//! Implementation of the `er` subcommands.
//!
//! Each command takes the already-loaded graph plus its parsed flags and
//! returns the report it would print, so the command logic is unit-testable
//! without spawning processes or capturing stdout.

use crate::args::ParsedArgs;
use er_apps::{
    adjusted_rand_index, edge_criticality, modularity, ClusteringConfig, ResistanceClustering,
};
use er_core::{
    ApproxConfig, Geer, GraphContext, GroundTruth, GroundTruthMethod, ResistanceEstimator,
};
use er_graph::{Graph, GraphStats, NodePairQuerySet};
use er_index::{DiagonalStrategy, ErIndex, LandmarkIndex, LandmarkSelection};
use er_sparsify::{sample_sparsifier, EdgeScores, QualityEvaluator, SampleBudget, ScoreMethod};
use std::fmt::Write as _;

/// Shared estimator configuration from the common flags.
pub fn approx_config(args: &ParsedArgs) -> Result<ApproxConfig, String> {
    let config = ApproxConfig {
        epsilon: args.flag("epsilon", 0.1)?,
        delta: args.flag("delta", 0.01)?,
        tau: args.flag("tau", 5usize)?,
        seed: args.flag("seed", 42u64)?,
        threads: args.flag("threads", 0usize)?,
    };
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

/// `er stats`: structural and spectral summary of the graph.
pub fn stats(graph: &Graph, _args: &ParsedArgs) -> Result<String, String> {
    let stats = GraphStats::compute(graph);
    let context = GraphContext::preprocess(graph).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "{stats:#?}");
    let _ = writeln!(
        out,
        "spectral bound lambda = max(|lambda_2|, |lambda_n|) = {:.6}",
        context.lambda()
    );
    let _ = writeln!(
        out,
        "  (lambda_2 = {:.6}, lambda_n = {:.6})",
        context.lambda2(),
        context.lambda_n()
    );
    Ok(out)
}

/// `er query s t [more pairs…]`: ε-approximate PER queries with GEER, checked
/// against the exact solver when `--check` is passed.
pub fn query(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let config = approx_config(args)?;
    let context = GraphContext::preprocess(graph).map_err(|e| e.to_string())?;
    let mut geer = Geer::new(&context, config);

    // Pairs come from positionals ("s t s t …") or --random N.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let positional: Vec<usize> = args
        .positional
        .iter()
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| format!("'{p}' is not a node id"))
        })
        .collect::<Result<_, _>>()?;
    for chunk in positional.chunks(2) {
        if let [s, t] = chunk {
            pairs.push((*s, *t));
        } else {
            return Err("query expects an even number of node ids (s t pairs)".into());
        }
    }
    let random: usize = args.flag("random", 0usize)?;
    if random > 0 {
        let set = NodePairQuerySet::uniform(graph, random, config.seed);
        pairs.extend(set.pairs().iter().map(|p| (p.s, p.t)));
    }
    if pairs.is_empty() {
        return Err("no query pairs: pass node ids or --random N".into());
    }

    let check = args.is_set("check");
    let truth = GroundTruth::with_method(graph, GroundTruthMethod::LaplacianSolve);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>12} {:>12} {:>10} {:>12}",
        "s",
        "t",
        "r'(s,t)",
        "walks",
        "matvec-ops",
        if check { "exact" } else { "" }
    );
    for (s, t) in pairs {
        let estimate = geer.estimate(s, t).map_err(|e| e.to_string())?;
        let exact = if check {
            format!("{:.6}", truth.resistance(s, t).map_err(|e| e.to_string())?)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{s:>8} {t:>8} {:>12.6} {:>12} {:>10} {:>12}",
            estimate.value, estimate.cost.random_walks, estimate.cost.matvec_ops, exact
        );
    }
    Ok(out)
}

/// `er critical`: the top `--top K` most critical (highest-resistance) edges.
pub fn critical(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let config = approx_config(args)?;
    let top: usize = args.flag("top", 10usize)?;
    let ranking = edge_criticality(graph, config).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} {:>8} {:>12}", "u", "v", "r(u,v)");
    for edge in ranking.iter().take(top) {
        let _ = writeln!(out, "{:>8} {:>8} {:>12.4}", edge.u, edge.v, edge.resistance);
    }
    let bridges = ranking.iter().filter(|e| e.resistance > 0.99).count();
    let _ = writeln!(
        out,
        "\n{} of {} edges are (near-)bridges (r > 0.99)",
        bridges,
        ranking.len()
    );
    Ok(out)
}

/// `er sparsify`: build a spectral sparsifier and report its quality.
pub fn sparsify(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let config = approx_config(args)?;
    let method = match args.flag_str("scores", "geer").as_str() {
        "exact" => ScoreMethod::Exact,
        "geer" => ScoreMethod::Geer {
            epsilon: config.epsilon,
        },
        "trees" => ScoreMethod::SpanningTrees {
            samples: args.flag("samples", 200usize)?,
        },
        other => {
            return Err(format!(
                "unknown --scores method '{other}' (exact, geer, trees)"
            ))
        }
    };
    let quality_epsilon: f64 = args.flag("quality-epsilon", 0.4)?;
    let scores = EdgeScores::compute_with_threads(graph, method, config.seed, config.threads)
        .map_err(|e| e.to_string())?;
    let output = sample_sparsifier(
        graph,
        &scores,
        SampleBudget::SpectralGuarantee {
            epsilon: quality_epsilon,
            scale: 1.5,
        },
        config.seed,
    )
    .map_err(|e| e.to_string())?;
    let report = QualityEvaluator::new(graph).evaluate(&output.sparsifier);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "edge scores:       {:?} (Foster total {:.1}, n-1 = {})",
        method,
        scores.total(),
        graph.num_nodes() - 1
    );
    let _ = writeln!(out, "samples drawn:     {}", output.samples_drawn);
    let _ = writeln!(
        out,
        "edges kept:        {} of {} ({:.1}%)",
        output.distinct_edges,
        graph.num_edges(),
        100.0 * output.keep_fraction(graph)
    );
    let _ = writeln!(out, "connected:         {}", report.connected);
    let _ = writeln!(
        out,
        "max quad. distortion: {:.3}",
        report.max_quadratic_distortion
    );
    let _ = writeln!(
        out,
        "max cut distortion:   {:.3}",
        report.max_cut_distortion
    );
    let _ = writeln!(
        out,
        "meets epsilon {:.2}:   {}",
        quality_epsilon,
        report.satisfies(quality_epsilon)
    );
    Ok(out)
}

/// `er cluster`: resistance k-medoids clustering.
pub fn cluster(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let k: usize = args.flag("k", 2usize)?;
    let config = ClusteringConfig {
        num_clusters: k,
        max_iterations: args.flag("iterations", 12usize)?,
        seed: args.flag("seed", 42u64)?,
        ..ClusteringConfig::default()
    };
    let result = ResistanceClustering::new(graph, config)
        .run()
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "clusters:   {}", result.num_clusters());
    let _ = writeln!(out, "sizes:      {:?}", result.sizes());
    let _ = writeln!(out, "medoids:    {:?}", result.medoids);
    let _ = writeln!(
        out,
        "iterations: {} (converged: {})",
        result.iterations, result.converged
    );
    let _ = writeln!(
        out,
        "modularity: {:.3}",
        modularity(graph, &result.assignments)
    );
    if args.is_set("print-assignments") {
        let _ = writeln!(out, "assignments: {:?}", result.assignments);
    }
    // Self-consistency diagnostic: clustering twice with different seeds
    // should give essentially the same partition on well-separated graphs.
    if args.is_set("stability") {
        let alt = ResistanceClustering::new(
            graph,
            ClusteringConfig {
                seed: config.seed.wrapping_add(1),
                ..config
            },
        )
        .run()
        .map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "stability (ARI vs reseeded run): {:.3}",
            adjusted_rand_index(&result.assignments, &alt.assignments)
        );
    }
    Ok(out)
}

/// `er profile s`: single-source resistance profile and nearest neighbours.
pub fn profile(graph: &Graph, args: &ParsedArgs) -> Result<String, String> {
    let source: usize = match args.positional.first() {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("'{raw}' is not a node id"))?,
        None => return Err("profile expects a source node id".into()),
    };
    let top: usize = args.flag("top", 10usize)?;
    let config = approx_config(args)?;
    let mut index = ErIndex::build_with_threads(
        graph,
        DiagonalStrategy::ExactSolves,
        config.seed,
        config.threads,
    )
    .map_err(|e| e.to_string())?;
    let nearest = index.nearest(source, top).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "nearest {} nodes to {} by effective resistance:",
        nearest.len(),
        source
    );
    let _ = writeln!(out, "{:>8} {:>12} {:>8}", "node", "r", "degree");
    for (node, r) in &nearest {
        let _ = writeln!(out, "{node:>8} {r:>12.4} {:>8}", graph.degree(*node));
    }
    let _ = writeln!(out, "\nKirchhoff index: {:.1}", index.kirchhoff_index());
    let landmarks = LandmarkIndex::build(
        graph,
        args.flag("landmarks", 8usize)?,
        LandmarkSelection::Mixed,
        7,
    )
    .map_err(|e| e.to_string())?;
    let far = graph.num_nodes() - 1;
    let bounds = landmarks.bounds(source, far).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "landmark bounds for r({source}, {far}): [{:.4}, {:.4}]",
        bounds.lower, bounds.upper
    );
    Ok(out)
}

/// The usage string printed by `er help` or on errors.
pub fn usage() -> String {
    "er — effective-resistance toolkit (SIGMOD 2023 reproduction)

USAGE:
    er <command> [args] [--graph <edge-list-path | family:n[:deg[:seed]]>] [flags]

COMMANDS:
    stats                       structural + spectral summary of the graph
    query <s> <t> […]           ε-approximate PER queries with GEER (--random N, --check)
    profile <s>                 single-source resistance profile (--top K, --landmarks K)
    critical                    rank edges by criticality (--top K)
    sparsify                    build and evaluate a spectral sparsifier (--scores exact|geer|trees)
    cluster                     resistance k-medoids clustering (--k K, --stability)
    help                        print this message

COMMON FLAGS:
    --graph <source>            edge-list file or synthetic spec (default: social:2000)
    --epsilon <f>               additive error ε (default 0.1)
    --delta <f>                 failure probability δ (default 0.01)
    --tau <n>                   AMC/GEER batches τ (default 5)
    --seed <n>                  RNG seed (default 42)
    --threads <n>               worker threads for parallel sampling (default 0 = all
                                cores; results are identical at any thread count)
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    fn args(line: &str) -> ParsedArgs {
        ParsedArgs::parse(line.split_whitespace().map(str::to_string)).unwrap()
    }

    fn graph() -> Graph {
        generators::community_social_network(240, 10.0, 2, 0.01, 5).unwrap()
    }

    #[test]
    fn stats_reports_structure_and_spectrum() {
        let out = stats(&graph(), &args("stats")).unwrap();
        assert!(out.contains("lambda"));
        assert!(out.contains("num_nodes") || out.contains("GraphStats"));
    }

    #[test]
    fn query_supports_pairs_random_and_check() {
        let g = graph();
        let out = query(&g, &args("query 0 120 5 17 --epsilon 0.2 --check")).unwrap();
        assert_eq!(out.lines().count(), 3, "header plus two result rows");
        assert!(out.contains("exact"));
        let out = query(&g, &args("query --random 3")).unwrap();
        assert_eq!(out.lines().count(), 4);
        assert!(query(&g, &args("query 1")).is_err(), "odd number of ids");
        assert!(query(&g, &args("query")).is_err(), "no pairs at all");
    }

    #[test]
    fn critical_and_sparsify_produce_reports() {
        let g = graph();
        let out = critical(&g, &args("critical --top 5 --epsilon 0.2")).unwrap();
        assert!(out.lines().count() >= 7);
        let out = sparsify(&g, &args("sparsify --scores trees --samples 60")).unwrap();
        assert!(out.contains("edges kept"));
        assert!(
            out.contains("true"),
            "the sparsifier of a small graph stays connected: {out}"
        );
        assert!(sparsify(&g, &args("sparsify --scores bogus")).is_err());
    }

    #[test]
    fn cluster_recovers_two_communities() {
        let g = graph();
        let out = cluster(&g, &args("cluster --k 2 --stability")).unwrap();
        assert!(out.contains("clusters:   2"));
        assert!(out.contains("modularity"));
        assert!(out.contains("stability"));
    }

    #[test]
    fn profile_lists_nearest_nodes() {
        let g = graph();
        let out = profile(&g, &args("profile 3 --top 4 --landmarks 4")).unwrap();
        assert!(out.contains("nearest 4 nodes"));
        assert!(out.contains("Kirchhoff"));
        assert!(profile(&g, &args("profile")).is_err());
        assert!(profile(&g, &args("profile notanode")).is_err());
    }

    #[test]
    fn config_flags_are_validated() {
        assert!(approx_config(&args("query --epsilon 0")).is_err());
        assert!(approx_config(&args("query --tau 0")).is_err());
        let config = approx_config(&args("query --epsilon 0.05 --seed 9 --threads 2")).unwrap();
        assert_eq!(config.epsilon, 0.05);
        assert_eq!(config.seed, 9);
        assert_eq!(config.threads, 2);
        assert_eq!(
            approx_config(&args("query")).unwrap().threads,
            0,
            "default: all cores"
        );
    }
}
