//! Graph acquisition for the CLI: load a SNAP-style edge list or synthesise a
//! named benchmark graph, then extract the largest connected component so the
//! estimators' standing assumptions hold.

use er_graph::{analysis, generators, io, Graph};

/// Where the graph comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSource {
    /// A whitespace-separated edge-list file (SNAP format).
    EdgeList(String),
    /// A named synthetic graph: `family:n[:avg_degree[:seed]]`.
    Synthetic(String),
}

impl GraphSource {
    /// Resolves the `--graph` flag value: an existing path loads a file,
    /// anything else is treated as a synthetic spec.
    pub fn from_flag(value: &str) -> GraphSource {
        if std::path::Path::new(value).exists() {
            GraphSource::EdgeList(value.to_string())
        } else {
            GraphSource::Synthetic(value.to_string())
        }
    }

    /// Loads or generates the graph and reduces it to its largest connected
    /// component (reporting how much was dropped).
    pub fn load(&self) -> Result<(Graph, String), String> {
        let (raw, label) = match self {
            GraphSource::EdgeList(path) => {
                let graph = io::read_edge_list(path).map_err(|e| format!("loading {path}: {e}"))?;
                (graph, format!("edge list {path}"))
            }
            GraphSource::Synthetic(spec) => {
                let graph = synthesize(spec)?;
                (graph, format!("synthetic '{spec}'"))
            }
        };
        let n_before = raw.num_nodes();
        let (lcc, _) = analysis::largest_connected_component(&raw);
        let dropped = n_before - lcc.num_nodes();
        let mut description = format!(
            "{label}: {} nodes, {} edges (avg degree {:.1})",
            lcc.num_nodes(),
            lcc.num_edges(),
            lcc.average_degree()
        );
        if dropped > 0 {
            description.push_str(&format!(", {dropped} nodes outside the LCC dropped"));
        }
        if analysis::is_bipartite(&lcc) {
            return Err(format!(
                "{label} is bipartite; the random-walk estimators need a non-bipartite graph"
            ));
        }
        Ok((lcc, description))
    }
}

/// Parses a synthetic graph spec of the form `family:n[:avg_degree[:seed]]`.
///
/// Families: `social`, `community`, `ba` (Barabási–Albert), `er`
/// (Erdős–Rényi), `grid`, `complete`, `lollipop`.
fn synthesize(spec: &str) -> Result<Graph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let family = parts[0];
    let parse_usize = |idx: usize, default: usize| -> Result<usize, String> {
        match parts.get(idx) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<usize>()
                .map_err(|_| format!("'{raw}' in spec '{spec}' is not an integer")),
        }
    };
    let parse_f64 = |idx: usize, default: f64| -> Result<f64, String> {
        match parts.get(idx) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("'{raw}' in spec '{spec}' is not a number")),
        }
    };
    let n = parse_usize(1, 2_000)?;
    let degree = parse_f64(2, 12.0)?;
    let seed = parse_usize(3, 42)? as u64;
    let graph = match family {
        "social" => generators::social_network_like(n, degree, seed),
        "community" => generators::community_social_network(n, degree, 4, 0.02, seed),
        "ba" => generators::barabasi_albert(n, (degree / 2.0).round().max(1.0) as usize, seed),
        "er" => generators::erdos_renyi_gnm(n, (n as f64 * degree / 2.0) as usize, seed),
        "grid" => {
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            generators::grid(side, side)
        }
        "complete" => generators::complete(n),
        "lollipop" => generators::lollipop(n / 2, n - n / 2),
        other => {
            return Err(format!(
                "unknown synthetic family '{other}' (expected social, community, ba, er, grid, complete or lollipop)"
            ))
        }
    };
    graph.map_err(|e| format!("generating '{spec}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_specs_parse_and_generate() {
        for spec in [
            "social:500",
            "community:400:10",
            "ba:300:6:7",
            "er:200:8",
            "complete:30",
        ] {
            let (graph, description) = GraphSource::Synthetic(spec.to_string()).load().unwrap();
            assert!(graph.num_nodes() > 0, "{spec}");
            assert!(analysis::is_connected(&graph));
            assert!(description.contains("synthetic"));
        }
    }

    #[test]
    fn grid_spec_is_rejected_as_bipartite() {
        // A pure grid is bipartite; the loader must say so rather than let the
        // estimators loop on a periodic chain.
        let err = GraphSource::Synthetic("grid:100".to_string())
            .load()
            .unwrap_err();
        assert!(err.contains("bipartite"));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(GraphSource::Synthetic("wat:100".to_string())
            .load()
            .is_err());
        assert!(GraphSource::Synthetic("social:abc".to_string())
            .load()
            .is_err());
    }

    #[test]
    fn edge_list_round_trip() {
        let dir = std::env::temp_dir().join("er_cli_input_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.txt");
        let g = generators::social_network_like(120, 6.0, 3).unwrap();
        io::write_edge_list(&g, &path).unwrap();
        let source = GraphSource::from_flag(path.to_str().unwrap());
        assert!(matches!(source, GraphSource::EdgeList(_)));
        let (loaded, _) = source.load().unwrap();
        assert_eq!(loaded.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_path_is_treated_as_synthetic_and_reported() {
        let source = GraphSource::from_flag("definitely/not/a/file.txt");
        assert!(matches!(source, GraphSource::Synthetic(_)));
        assert!(source.load().is_err());
    }
}
