//! Uniform spanning-tree sampling with Wilson's algorithm.
//!
//! The HAY baseline \[29\] estimates the effective resistance of an *edge*
//! `(s, t) ∈ E` through the matrix-tree identity
//! `r(s, t) = Pr[(s, t) ∈ T]` where `T` is a uniformly random spanning tree.
//! Wilson's algorithm samples exact uniform spanning trees by stitching
//! together loop-erased random walks, in expected time proportional to the
//! mean hitting time of the graph.

use crate::kernel::WalkKernel;
use er_graph::{Graph, NodeId};
use rand::Rng;

/// A sampled spanning tree, stored as `parent[v]` pointers towards the root
/// (with `parent[root] == root`).
#[derive(Clone, Debug)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<NodeId>,
}

impl SpanningTree {
    /// The root node the tree was grown towards.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Returns `true` if the undirected edge `{u, v}` belongs to the tree.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && (self.parent[u] == v || self.parent[v] == u)
    }

    /// The `n − 1` undirected edges of the tree.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::with_capacity(self.parent.len().saturating_sub(1));
        self.for_each_edge(|u, v| edges.push((u, v)));
        edges
    }

    /// Calls `f` on each of the `n − 1` undirected edges `(u, v)` (with
    /// `u < v`) without materialising them — the allocation-free counterpart
    /// of [`SpanningTree::edges`] for per-tree hot loops.
    pub fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        for (v, &p) in self.parent.iter().enumerate() {
            if v != p {
                if v < p {
                    f(v, p);
                } else {
                    f(p, v);
                }
            }
        }
    }

    /// Number of nodes spanned.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }
}

/// Samples a uniform spanning tree of a connected graph with Wilson's
/// algorithm, rooted at `root`.
///
/// Panics in debug builds if the graph is disconnected (the loop-erased walk
/// from an unreachable node would never terminate); in release builds an
/// unreachable component would loop forever, so callers must validate
/// connectivity first (as `er-core` does).
pub fn sample_spanning_tree<R: Rng + ?Sized>(
    graph: &Graph,
    root: NodeId,
    rng: &mut R,
) -> SpanningTree {
    let n = graph.num_nodes();
    let kernel = WalkKernel::new(graph);
    let mut in_tree = vec![false; n];
    let mut parent: Vec<NodeId> = (0..n).collect();
    in_tree[root] = true;

    // `next[v]` records the successor of v on the current loop-erased walk.
    let mut next = vec![usize::MAX; n];
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        // Random walk from `start` until it hits the tree, remembering only
        // the latest successor of each visited node (this implicitly erases
        // loops: revisiting a node overwrites the old successor). Steps go
        // through the walk kernel (one row load + widening multiply each).
        let mut u = start;
        while !in_tree[u] {
            let v = kernel
                .step(u, rng)
                .expect("connected graph has no isolated nodes");
            next[u] = v;
            u = v;
        }
        // Retrace the loop-erased path and attach it to the tree.
        let mut u = start;
        while !in_tree[u] {
            in_tree[u] = true;
            parent[u] = next[u];
            u = next[u];
        }
    }
    SpanningTree { root, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn is_spanning_tree(g: &Graph, tree: &SpanningTree) -> bool {
        let edges = tree.edges();
        if edges.len() != g.num_nodes() - 1 {
            return false;
        }
        // all tree edges are graph edges
        if !edges.iter().all(|&(u, v)| g.has_edge(u, v)) {
            return false;
        }
        // connectivity of the tree: union-find over tree edges
        let mut parent: Vec<usize> = (0..g.num_nodes()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru == rv {
                return false; // cycle
            }
            parent[ru] = rv;
        }
        let root = find(&mut parent, 0);
        (0..g.num_nodes()).all(|v| find(&mut parent, v) == root)
    }

    #[test]
    fn sampled_trees_are_spanning_trees() {
        let g = generators::social_network_like(120, 6.0, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for i in 0..10 {
            let tree = sample_spanning_tree(&g, i % g.num_nodes(), &mut rng);
            assert_eq!(tree.num_nodes(), g.num_nodes());
            assert!(
                is_spanning_tree(&g, &tree),
                "sample {i} is not a spanning tree"
            );
        }
    }

    #[test]
    fn tree_of_a_tree_is_itself() {
        let g = generators::path(20).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = sample_spanning_tree(&g, 0, &mut rng);
        let edges: HashSet<_> = tree.edges().into_iter().collect();
        let expected: HashSet<_> = g.edges().collect();
        assert_eq!(edges, expected);
        assert_eq!(tree.root(), 0);
    }

    #[test]
    fn contains_edge_matches_edge_list() {
        let g = generators::complete(8).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tree = sample_spanning_tree(&g, 5, &mut rng);
        let edges: HashSet<_> = tree.edges().into_iter().collect();
        for u in 0..8 {
            for v in 0..8 {
                let key = if u < v { (u, v) } else { (v, u) };
                assert_eq!(tree.contains_edge(u, v), u != v && edges.contains(&key));
            }
        }
    }

    #[test]
    fn uniformity_on_triangle() {
        // The triangle has 3 spanning trees, each omitting one edge; every
        // edge appears in exactly 2 of 3 trees, so empirical edge frequencies
        // must approach 2/3 (which is also r(u, v), the HAY identity).
        let g = generators::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            let tree = sample_spanning_tree(&g, 0, &mut rng);
            if tree.contains_edge(0, 1) {
                counts[0] += 1;
            }
            if tree.contains_edge(1, 2) {
                counts[1] += 1;
            }
            if tree.contains_edge(0, 2) {
                counts[2] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!((freq - 2.0 / 3.0).abs() < 0.01, "edge {i} frequency {freq}");
        }
    }

    #[test]
    fn uniformity_on_square_with_diagonal() {
        // Graph: square 0-1-2-3-0 plus diagonal 0-2. Spanning trees: 8 total
        // (by the matrix-tree theorem). Edge (0,2) ER = 1/2, so it should
        // appear in half of the sampled trees.
        let g = er_graph::GraphBuilder::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let trials = 30_000;
        let mut diag = 0usize;
        for _ in 0..trials {
            if sample_spanning_tree(&g, 1, &mut rng).contains_edge(0, 2) {
                diag += 1;
            }
        }
        let freq = diag as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.01, "diagonal frequency {freq}");
    }
}
