//! Uniform spanning-tree sampling with Wilson's algorithm.
//!
//! The HAY baseline \[29\] estimates the effective resistance of an *edge*
//! `(s, t) ∈ E` through the matrix-tree identity
//! `r(s, t) = Pr[(s, t) ∈ T]` where `T` is a uniformly random spanning tree.
//! Wilson's algorithm samples exact uniform spanning trees by stitching
//! together loop-erased random walks, in expected time proportional to the
//! mean hitting time of the graph.

use crate::kernel::{StreamRng, WalkKernel};
use er_graph::{Graph, NodeId};
use rand::Rng;
use std::ops::Range;

/// A sampled spanning tree, stored as `parent[v]` pointers towards the root
/// (with `parent[root] == root`).
#[derive(Clone, Debug)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<NodeId>,
}

impl SpanningTree {
    /// The root node the tree was grown towards.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Returns `true` if the undirected edge `{u, v}` belongs to the tree.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && (self.parent[u] == v || self.parent[v] == u)
    }

    /// The `n − 1` undirected edges of the tree.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::with_capacity(self.parent.len().saturating_sub(1));
        self.for_each_edge(|u, v| edges.push((u, v)));
        edges
    }

    /// Calls `f` on each of the `n − 1` undirected edges `(u, v)` (with
    /// `u < v`) without materialising them — the allocation-free counterpart
    /// of [`SpanningTree::edges`] for per-tree hot loops.
    pub fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        for (v, &p) in self.parent.iter().enumerate() {
            if v != p {
                if v < p {
                    f(v, p);
                } else {
                    f(p, v);
                }
            }
        }
    }

    /// Number of nodes spanned.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }
}

/// Samples a uniform spanning tree of a connected graph with Wilson's
/// algorithm, rooted at `root`.
///
/// Panics in debug builds if the graph is disconnected (the loop-erased walk
/// from an unreachable node would never terminate); in release builds an
/// unreachable component would loop forever, so callers must validate
/// connectivity first (as `er-core` does).
pub fn sample_spanning_tree<R: Rng + ?Sized>(
    graph: &Graph,
    root: NodeId,
    rng: &mut R,
) -> SpanningTree {
    let n = graph.num_nodes();
    let kernel = WalkKernel::new(graph);
    let mut in_tree = vec![false; n];
    let mut parent: Vec<NodeId> = (0..n).collect();
    in_tree[root] = true;

    // `next[v]` records the successor of v on the current loop-erased walk.
    let mut next = vec![usize::MAX; n];
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        // Random walk from `start` until it hits the tree, remembering only
        // the latest successor of each visited node (this implicitly erases
        // loops: revisiting a node overwrites the old successor). Steps go
        // through the walk kernel (one row load + widening multiply each).
        let mut u = start;
        while !in_tree[u] {
            let v = kernel
                .step(u, rng)
                .expect("connected graph has no isolated nodes");
            next[u] = v;
            u = v;
        }
        // Retrace the loop-erased path and attach it to the tree.
        let mut u = start;
        while !in_tree[u] {
            in_tree[u] = true;
            parent[u] = next[u];
            u = next[u];
        }
    }
    SpanningTree { root, parent }
}

/// Cap on the total per-lane Wilson state (≈ 17 bytes per node per lane:
/// in-tree flag + parent + loop-erasure successor). A graph big enough to
/// bind this cap is past the last-level cache anyway, where fewer deeper
/// lanes beat many thrashing ones — and since each tree is a pure function
/// of `(seed, index)`, shrinking the lane count never changes a value.
const WILSON_STATE_BUDGET: usize = 64 << 20;

/// Below this CSR footprint [`sample_spanning_trees`] takes the single-lane
/// sequential fast path: steps on a cache-resident graph are hits, so
/// lockstep has no miss latency to hide and only adds per-step lane
/// overhead. The `walk_kernel` bench sweep measured the crossover between a
/// ~1.4 MiB CSR (every lane count loses) and a ~2.7 MiB CSR (2–3 lanes win
/// ~1.25x).
const WILSON_SEQUENTIAL_CSR_BYTES: usize = 2 << 20;

/// Lockstep lane count for out-of-cache graphs. Each Wilson lane drags its
/// own O(n) in-tree/parent/successor state through the cache, so — unlike
/// the O(1)-state walk lanes — a few deep lanes beat a full lane block: the
/// bench sweep peaked at 2–3 lanes (~1.15–1.25x over sequential) and gave
/// the whole win back by 8–16 lanes.
const WILSON_WIDE_LANES: usize = 3;

/// Per-lane state of one in-flight Wilson tree: its index and RNG stream,
/// the tree under construction (the `parent` vector doubles as the final
/// [`SpanningTree`]), the in-tree flags, the loop-erasure successor array,
/// the start-node scan cursor and the walk position.
struct WilsonLane {
    index: u64,
    rng: StreamRng,
    tree: SpanningTree,
    in_tree: Vec<bool>,
    next: Vec<NodeId>,
    /// Scan position of the sequential `for start in 0..n` loop; the current
    /// walk segment started here.
    cursor: NodeId,
    /// Current position of the walk segment.
    u: NodeId,
    steps: u64,
}

impl WilsonLane {
    fn new(n: usize, root: NodeId) -> WilsonLane {
        WilsonLane {
            index: 0,
            rng: StreamRng::new(0, 0),
            tree: SpanningTree {
                root,
                parent: (0..n).collect(),
            },
            in_tree: vec![false; n],
            next: vec![usize::MAX; n],
            cursor: 0,
            u: root,
            steps: 0,
        }
    }

    /// Resets the lane for tree `index` on stream `(seed, index)`. Returns
    /// `false` if the tree is already complete (single-node graph), in which
    /// case the caller emits it without any lockstep rounds.
    fn begin(&mut self, seed: u64, index: u64) -> bool {
        self.index = index;
        self.rng = StreamRng::new(seed, index);
        self.steps = 0;
        self.in_tree.fill(false);
        self.in_tree[self.tree.root] = true;
        for (v, p) in self.tree.parent.iter_mut().enumerate() {
            *p = v;
        }
        // `next` needs no reset: the retrace only reads successors of nodes
        // visited by the current walk segment, which were all just written —
        // the same argument that lets the sequential sampler keep `next`
        // across segments.
        self.cursor = 0;
        self.find_start()
    }

    /// Advances the cursor to the next node outside the tree and begins a
    /// walk segment there; `false` means the tree is complete.
    fn find_start(&mut self) -> bool {
        while self.cursor < self.in_tree.len() {
            if !self.in_tree[self.cursor] {
                self.u = self.cursor;
                return true;
            }
            self.cursor += 1;
        }
        false
    }

    /// Retraces the loop-erased path of the finished walk segment (the walk
    /// just hit the tree at `self.u`) and attaches it.
    fn attach(&mut self) {
        let mut u = self.cursor;
        while !self.in_tree[u] {
            self.in_tree[u] = true;
            self.tree.parent[u] = self.next[u];
            u = self.next[u];
        }
        self.cursor += 1;
    }
}

/// Samples the uniform spanning trees with indices `range` — tree `i` from
/// RNG stream `(seed, i)` — running several trees' loop-erased walks in
/// lockstep lanes, and reports each finished tree to `sink` as
/// `(index, &tree, walk_steps)`.
///
/// Each tree owns one lane: its own RNG stream, in-tree flags and
/// loop-erasure state. Lockstep execution only interleaves the memory
/// accesses of *different* trees; within one tree the draw schedule is
/// exactly that of [`sample_spanning_tree`] on the same stream, so every
/// tree's edge set (and parent orientation) is bit-identical to the
/// sequential sampler — at any lane width or thread count. A lane whose
/// tree completes refills from the pending range in the same round, so the
/// memory-level parallelism never drains while trees remain.
///
/// `sink` fires once per tree in **retire order** (a pure function of
/// `(seed, range, lanes)`, not of thread count); feed commutative
/// accumulators — tree-membership counts and step totals are.
/// `walk_steps` is the tree's true loop-erased-walk step count (one RNG draw
/// per step), which the HAY cost accounting reports instead of the old
/// `n − 1` lower bound.
///
/// Lane count is picked by CSR footprint (see [`sample_spanning_trees_on`]
/// for an explicit override): a cache-resident graph takes the single-lane
/// fast path — its steps are cache hits, so there is no miss latency for
/// lockstep to hide and the lane machinery would only cost — while a larger
/// graph runs a few (currently 3) trees in lockstep. Unlike plain walk
/// lanes, every Wilson lane drags O(n) tree state with it, so the sweep in
/// the `walk_kernel` bench found a few deep lanes beat a full lane block.
///
/// Panics on isolated nodes like [`sample_spanning_tree`]; callers must
/// validate connectivity first.
pub fn sample_spanning_trees(
    graph: &Graph,
    root: NodeId,
    seed: u64,
    range: Range<u64>,
    sink: &mut impl FnMut(u64, &SpanningTree, u64),
) {
    let csr_bytes = (graph.num_nodes() + 1 + 2 * graph.num_edges()) * std::mem::size_of::<NodeId>();
    let lanes = if csr_bytes <= WILSON_SEQUENTIAL_CSR_BYTES {
        1
    } else {
        WILSON_WIDE_LANES
    };
    // Prefetch-ahead pays here precisely because lanes are scarce: with only
    // a few walks in flight the out-of-order window cannot hide every row
    // miss on its own (the wide drivers leave it off for the same reason).
    let kernel = WalkKernel::new(graph).with_prefetch(lanes > 1);
    run_lockstep(kernel, root, seed, range, lanes, sink)
}

/// [`sample_spanning_trees`] on an explicit [`WalkKernel`], with the lane
/// count taken from the kernel's lane width instead of the CSR-footprint
/// rule — the entry point for the bench sweeps and the width/prefetch
/// bit-identity tests. Results are identical for any kernel configuration.
pub fn sample_spanning_trees_on(
    kernel: WalkKernel<'_>,
    root: NodeId,
    seed: u64,
    range: Range<u64>,
    sink: &mut impl FnMut(u64, &SpanningTree, u64),
) {
    let lanes = kernel.lanes().lanes();
    run_lockstep(kernel, root, seed, range, lanes, sink)
}

/// Runs one reusable lane straight through the range — the cache-resident
/// fast path, equivalent to [`sample_spanning_tree`] per index but without
/// per-tree allocations or the lockstep round loop (and without prefetch,
/// which is wasted work when every row is already resident).
fn run_sequential(
    kernel: WalkKernel<'_>,
    root: NodeId,
    seed: u64,
    range: Range<u64>,
    sink: &mut impl FnMut(u64, &SpanningTree, u64),
) {
    let mut lane = WilsonLane::new(kernel.num_nodes(), root);
    for index in range {
        if lane.begin(seed, index) {
            loop {
                let v = kernel
                    .step(lane.u, &mut lane.rng)
                    .expect("connected graph has no isolated nodes");
                lane.steps += 1;
                lane.next[lane.u] = v;
                lane.u = v;
                if lane.in_tree[lane.u] {
                    lane.attach();
                    if !lane.find_start() {
                        break;
                    }
                }
            }
        }
        sink(lane.index, &lane.tree, lane.steps);
    }
}

fn run_lockstep(
    kernel: WalkKernel<'_>,
    root: NodeId,
    seed: u64,
    range: Range<u64>,
    lanes: usize,
    sink: &mut impl FnMut(u64, &SpanningTree, u64),
) {
    if range.is_empty() {
        return;
    }
    let n = kernel.num_nodes();
    let per_lane_bytes = n.max(1) * (std::mem::size_of::<NodeId>() * 2 + 1);
    let lanes = lanes
        .min((WILSON_STATE_BUDGET / per_lane_bytes).max(1))
        .min((range.end - range.start).min(64) as usize)
        .max(1);
    if lanes == 1 {
        return run_sequential(kernel, root, seed, range, sink);
    }

    let mut lane_state: Vec<WilsonLane> = (0..lanes).map(|_| WilsonLane::new(n, root)).collect();
    let mut next_index = range.start;
    let mut alive: u64 = 0;

    // Fills `lane` with the next pending tree, emitting any trees that are
    // complete at birth (single-node graphs take zero walk steps); returns
    // whether the lane is live afterwards.
    let refill = |lane: &mut WilsonLane,
                  next_index: &mut u64,
                  sink: &mut dyn FnMut(u64, &SpanningTree, u64)| {
        while *next_index < range.end {
            let index = *next_index;
            *next_index += 1;
            if lane.begin(seed, index) {
                return true;
            }
            sink(lane.index, &lane.tree, lane.steps);
        }
        false
    };

    for (lane, state) in lane_state.iter_mut().enumerate() {
        if refill(state, &mut next_index, sink) {
            alive |= 1 << lane;
        }
    }
    while alive != 0 {
        for (lane, state) in lane_state.iter_mut().enumerate() {
            if alive & (1 << lane) == 0 {
                continue;
            }
            let v = kernel
                .step(state.u, &mut state.rng)
                .expect("connected graph has no isolated nodes");
            kernel.prefetch_row(v);
            state.steps += 1;
            state.next[state.u] = v;
            state.u = v;
            if state.in_tree[state.u] {
                state.attach();
                if !state.find_start() {
                    sink(state.index, &state.tree, state.steps);
                    if !refill(state, &mut next_index, sink) {
                        alive &= !(1 << lane);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaneWidth;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::collections::HashSet;

    /// Wraps a [`StreamRng`] and counts its `next_u64` draws, so the
    /// sequential reference exposes its draw schedule length.
    struct CountingRng {
        inner: StreamRng,
        draws: u64,
    }

    impl RngCore for CountingRng {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
    }

    /// The sequential reference for tree `i` under `seed`: the tree plus the
    /// number of RNG draws its loop-erased walks consumed.
    fn sequential_tree(g: &Graph, root: NodeId, seed: u64, i: u64) -> (SpanningTree, u64) {
        let mut rng = CountingRng {
            inner: StreamRng::new(seed, i),
            draws: 0,
        };
        let tree = sample_spanning_tree(g, root, &mut rng);
        (tree, rng.draws)
    }

    #[test]
    fn lockstep_trees_match_sequential_draw_schedules_at_every_width() {
        // Every tree the lockstep driver emits must equal the sequential
        // sampler's tree on the same stream — same parent orientation, not
        // just the same edge set — and its reported step count must equal
        // the sequential draw count (one draw per step), at every width.
        let g = generators::social_network_like(180, 7.0, 12).unwrap();
        let (root, seed) = (3, 0x717e);
        for width in [LaneWidth::L8, LaneWidth::L16, LaneWidth::L32] {
            // Offset range: stream derivation must follow the absolute index.
            for range in [5u64..77, 0..1, 9..9, 0..3] {
                let mut got = Vec::new();
                let kernel = WalkKernel::new(&g).with_lanes(width);
                sample_spanning_trees_on(kernel, root, seed, range.clone(), &mut |i, t, s| {
                    got.push((i, t.root(), t.parent.clone(), s));
                });
                assert_eq!(got.len() as u64, range.end - range.start);
                got.sort_unstable_by_key(|e| e.0);
                for (slot, i) in range.enumerate() {
                    let (tree, draws) = sequential_tree(&g, root, seed, i);
                    let (gi, groot, gparent, gsteps) = &got[slot];
                    assert_eq!(*gi, i, "{width:?}");
                    assert_eq!(*groot, tree.root());
                    assert_eq!(*gparent, tree.parent, "tree {i} at {width:?}");
                    assert_eq!(*gsteps, draws, "draw schedule of tree {i} at {width:?}");
                }
            }
        }
    }

    #[test]
    fn lockstep_refill_churn_preserves_every_tree() {
        // A tiny graph retires trees quickly, churning the refill path many
        // times per lane; every pending tree must still be emitted exactly
        // once with its sequential bits.
        let g = generators::complete(5).unwrap();
        let (seed, range) = (42u64, 0u64..257);
        // Once through the CSR-footprint entry (sequential fast path on a
        // graph this small) and once through the explicit-kernel entry
        // (8-lane lockstep churn); both must emit identical trees.
        for lockstep in [false, true] {
            let mut seen = vec![false; range.end as usize];
            let mut sink = |i: u64, t: &SpanningTree, s: u64| {
                assert!(!seen[i as usize], "tree {i} emitted twice");
                seen[i as usize] = true;
                let (tree, draws) = sequential_tree(&g, 0, seed, i);
                assert_eq!(t.parent, tree.parent);
                assert_eq!(s, draws);
            };
            if lockstep {
                let kernel = WalkKernel::new(&g).with_lanes(LaneWidth::L8);
                sample_spanning_trees_on(kernel, 0, seed, range.clone(), &mut sink);
            } else {
                sample_spanning_trees(&g, 0, seed, range.clone(), &mut sink);
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn lockstep_handles_degenerate_graphs() {
        // Single-node graph: every tree is complete at birth, zero steps —
        // on both the fast path and the lockstep refill path (where `begin`
        // returns false and the refill loop emits the tree itself).
        let singleton = er_graph::GraphBuilder::new(1).build().unwrap();
        let mut emitted = Vec::new();
        sample_spanning_trees(&singleton, 0, 7, 0..5, &mut |i, t, s| {
            emitted.push((i, t.edges().len(), s));
        });
        assert_eq!(emitted, (0..5).map(|i| (i, 0, 0)).collect::<Vec<_>>());
        emitted.clear();
        let kernel = WalkKernel::new(&singleton).with_lanes(LaneWidth::L8);
        sample_spanning_trees_on(kernel, 0, 7, 0..5, &mut |i, t, s| {
            emitted.push((i, t.edges().len(), s));
        });
        assert_eq!(emitted, (0..5).map(|i| (i, 0, 0)).collect::<Vec<_>>());

        // Two-node path: one forced edge, but the walk still draws.
        let p2 = generators::path(2).unwrap();
        sample_spanning_trees(&p2, 0, 7, 0..4, &mut |_, t, s| {
            assert_eq!(t.edges(), vec![(0, 1)]);
            assert!(s >= 1);
        });
    }

    #[test]
    fn lockstep_prefetch_toggle_never_changes_a_tree() {
        let g = generators::barabasi_albert(400, 5, 9).unwrap();
        let collect = |prefetch: bool| {
            let mut out = Vec::new();
            let kernel = WalkKernel::new(&g).with_prefetch(prefetch);
            sample_spanning_trees_on(kernel, 1, 0xbee, 0..30, &mut |i, t, s| {
                out.push((i, t.parent.clone(), s));
            });
            out
        };
        assert_eq!(collect(true), collect(false));
    }

    fn is_spanning_tree(g: &Graph, tree: &SpanningTree) -> bool {
        let edges = tree.edges();
        if edges.len() != g.num_nodes() - 1 {
            return false;
        }
        // all tree edges are graph edges
        if !edges.iter().all(|&(u, v)| g.has_edge(u, v)) {
            return false;
        }
        // connectivity of the tree: union-find over tree edges
        let mut parent: Vec<usize> = (0..g.num_nodes()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru == rv {
                return false; // cycle
            }
            parent[ru] = rv;
        }
        let root = find(&mut parent, 0);
        (0..g.num_nodes()).all(|v| find(&mut parent, v) == root)
    }

    #[test]
    fn sampled_trees_are_spanning_trees() {
        let g = generators::social_network_like(120, 6.0, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for i in 0..10 {
            let tree = sample_spanning_tree(&g, i % g.num_nodes(), &mut rng);
            assert_eq!(tree.num_nodes(), g.num_nodes());
            assert!(
                is_spanning_tree(&g, &tree),
                "sample {i} is not a spanning tree"
            );
        }
    }

    #[test]
    fn tree_of_a_tree_is_itself() {
        let g = generators::path(20).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = sample_spanning_tree(&g, 0, &mut rng);
        let edges: HashSet<_> = tree.edges().into_iter().collect();
        let expected: HashSet<_> = g.edges().collect();
        assert_eq!(edges, expected);
        assert_eq!(tree.root(), 0);
    }

    #[test]
    fn contains_edge_matches_edge_list() {
        let g = generators::complete(8).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tree = sample_spanning_tree(&g, 5, &mut rng);
        let edges: HashSet<_> = tree.edges().into_iter().collect();
        for u in 0..8 {
            for v in 0..8 {
                let key = if u < v { (u, v) } else { (v, u) };
                assert_eq!(tree.contains_edge(u, v), u != v && edges.contains(&key));
            }
        }
    }

    #[test]
    fn uniformity_on_triangle() {
        // The triangle has 3 spanning trees, each omitting one edge; every
        // edge appears in exactly 2 of 3 trees, so empirical edge frequencies
        // must approach 2/3 (which is also r(u, v), the HAY identity).
        let g = generators::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            let tree = sample_spanning_tree(&g, 0, &mut rng);
            if tree.contains_edge(0, 1) {
                counts[0] += 1;
            }
            if tree.contains_edge(1, 2) {
                counts[1] += 1;
            }
            if tree.contains_edge(0, 2) {
                counts[2] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!((freq - 2.0 / 3.0).abs() < 0.01, "edge {i} frequency {freq}");
        }
    }

    #[test]
    fn uniformity_on_square_with_diagonal() {
        // Graph: square 0-1-2-3-0 plus diagonal 0-2. Spanning trees: 8 total
        // (by the matrix-tree theorem). Edge (0,2) ER = 1/2, so it should
        // appear in half of the sampled trees.
        let g = er_graph::GraphBuilder::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let trials = 30_000;
        let mut diag = 0usize;
        for _ in 0..trials {
            if sample_spanning_tree(&g, 1, &mut rng).contains_edge(0, 2) {
                diag += 1;
            }
        }
        let freq = diag as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.01, "diagonal frequency {freq}");
    }
}
