//! Batched random-walk execution with deterministic parallel fan-out.
//!
//! The Monte Carlo estimators simulate the same kind of walk thousands of
//! times per query. [`WalkEngine`] owns the graph (as an `Arc`, so engines are
//! `Send + Sync` and cheap to clone) and exposes bulk operations that fan the
//! walks out over the [`crate::par`] layer, running them through the
//! zero-allocation [`crate::kernel`]:
//!
//! * [`WalkEngine::endpoint_histogram`] — how often each node is the endpoint
//!   of a length-`len` walk (TP's estimate of `p_len(s, ·)`),
//! * [`WalkEngine::visit_counts`] — how often each node is visited anywhere
//!   along the walk (AMC's weighted sums over visited nodes),
//! * [`WalkEngine::endpoint_samples`] — raw endpoints, for estimators that
//!   post-process the sample (e.g. collision counting in TPC).
//!
//! Each bulk call draws a single `u64` from the caller's RNG to seed the
//! fan-out; per-walk streams are then derived from `(fan_seed, walk_index)`,
//! so for a fixed caller seed the results are bit-identical at any thread
//! count. Tallies go through a shared [`ScratchPool`], so steady-state bulk
//! calls do O(walks · length) work — never O(n) zeroing — and allocate
//! nothing beyond the returned vector.

use crate::kernel::{self, ScratchPool, WalkKernel};
use crate::par;
use er_graph::{Graph, IntoGraphArc, NodeId};
use rand::Rng;
use std::sync::Arc;

/// Histogram of walk endpoints over the node set.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointHistogram {
    counts: Vec<u64>,
    walks: u64,
}

impl EndpointHistogram {
    /// Number of walks aggregated into the histogram.
    pub fn num_walks(&self) -> u64 {
        self.walks
    }

    /// Raw endpoint count of node `v`.
    pub fn count(&self, v: NodeId) -> u64 {
        self.counts[v]
    }

    /// Empirical endpoint probability of node `v` (0 when no walks were run).
    pub fn frequency(&self, v: NodeId) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.counts[v] as f64 / self.walks as f64
        }
    }

    /// The empirical endpoint distribution as a dense probability vector.
    pub fn distribution(&self) -> Vec<f64> {
        if self.walks == 0 {
            return vec![0.0; self.counts.len()];
        }
        // One reciprocal for the whole vector instead of a division (and a
        // repeated zero-walk branch) per element.
        let scale = 1.0 / self.walks as f64;
        self.counts.iter().map(|&c| c as f64 * scale).collect()
    }

    /// Total variation distance between the empirical endpoint distribution
    /// and an arbitrary reference distribution (e.g. the stationary
    /// distribution π).
    pub fn total_variation_from(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.counts.len());
        0.5 * reference
            .iter()
            .enumerate()
            .map(|(v, &p)| (self.frequency(v) - p).abs())
            .sum::<f64>()
    }
}

/// Reusable executor for batches of simple random walks on one graph.
#[derive(Clone, Debug)]
pub struct WalkEngine {
    graph: Arc<Graph>,
    /// Reusable per-worker tally scratches (shared across engine clones).
    scratch: Arc<ScratchPool>,
    /// Worker threads for the bulk operations (0 = all cores).
    threads: usize,
    /// Total number of walk steps taken since construction (cost accounting).
    steps: u64,
    /// Total number of walks simulated since construction.
    walks: u64,
}

impl WalkEngine {
    /// Creates an engine over `graph`, using all cores for bulk operations.
    pub fn new(graph: impl IntoGraphArc) -> Self {
        let graph = graph.into_graph_arc();
        let scratch = Arc::new(ScratchPool::new(graph.num_nodes()));
        WalkEngine {
            graph,
            scratch,
            threads: par::AUTO,
            steps: 0,
            walks: 0,
        }
    }

    /// Sets the number of worker threads for the bulk operations
    /// (0 = all cores). Results are identical at any thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The graph the engine walks on.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The engine's shared graph handle.
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The engine's shared tally-scratch pool.
    pub fn scratch_pool(&self) -> &Arc<ScratchPool> {
        &self.scratch
    }

    /// Total number of walk steps taken so far.
    pub fn total_steps(&self) -> u64 {
        self.steps
    }

    /// Total number of walks simulated so far.
    pub fn total_walks(&self) -> u64 {
        self.walks
    }

    /// Simulates one length-`len` walk and returns its endpoint.
    pub fn endpoint<R: Rng + ?Sized>(&mut self, start: NodeId, len: usize, rng: &mut R) -> NodeId {
        let (end, steps) = WalkKernel::new(&self.graph).endpoint(start, len, rng);
        self.steps += steps;
        self.walks += 1;
        end
    }

    /// Runs `num_walks` length-`len` walks from `start` and returns the raw
    /// endpoint samples, in walk-index order.
    pub fn endpoint_samples<R: Rng + ?Sized>(
        &mut self,
        start: NodeId,
        len: usize,
        num_walks: u64,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let fan_seed = rng.next_u64();
        let kernel = WalkKernel::new(&self.graph);
        let out = par::par_fold_ranges(
            num_walks,
            self.threads,
            || (Vec::new(), 0u64),
            |range, acc: &mut (Vec<NodeId>, u64)| {
                kernel.batch_endpoints(start, len, fan_seed, range, &mut |_, end, steps| {
                    acc.0.push(end);
                    acc.1 += steps;
                });
            },
            |total, part| {
                total.0.extend(part.0);
                total.1 += part.1;
            },
        );
        self.steps += out.1;
        self.walks += num_walks;
        out.0
    }

    /// Runs `num_walks` length-`len` walks from `start` and histograms their
    /// endpoints — an empirical estimate of the distribution `p_len(start, ·)`.
    pub fn endpoint_histogram<R: Rng + ?Sized>(
        &mut self,
        start: NodeId,
        len: usize,
        num_walks: u64,
        rng: &mut R,
    ) -> EndpointHistogram {
        let fan_seed = rng.next_u64();
        let kernel = WalkKernel::new(&self.graph);
        let (counts, steps) =
            kernel::par_tally(num_walks, self.threads, &self.scratch, |range, scratch| {
                kernel.batch_endpoints(start, len, fan_seed, range, &mut |_, end, steps| {
                    scratch.bump(end);
                    scratch.add_steps(steps);
                });
            });
        self.steps += steps;
        self.walks += num_walks;
        EndpointHistogram {
            counts,
            walks: num_walks,
        }
    }

    /// Runs `num_walks` length-`len` walks from `start` and counts how many
    /// times each node is visited across all steps of all walks (step 0, the
    /// start node itself, is not counted — matching the `i ≥ 1` sums of
    /// Eq. (12) in the paper).
    pub fn visit_counts<R: Rng + ?Sized>(
        &mut self,
        start: NodeId,
        len: usize,
        num_walks: u64,
        rng: &mut R,
    ) -> Vec<u64> {
        let fan_seed = rng.next_u64();
        let kernel = WalkKernel::new(&self.graph);
        let (counts, steps) =
            kernel::par_tally(num_walks, self.threads, &self.scratch, |range, scratch| {
                let steps = kernel.batch_visits(start, len, fan_seed, range, &mut |v| {
                    scratch.bump(v);
                });
                scratch.add_steps(steps);
            });
        self.steps += steps;
        self.walks += num_walks;
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_counts_and_frequencies_are_consistent() {
        let g = generators::complete(5).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let hist = engine.endpoint_histogram(0, 3, 4_000, &mut rng);
        assert_eq!(hist.num_walks(), 4_000);
        let total: u64 = (0..5).map(|v| hist.count(v)).sum();
        assert_eq!(total, 4_000);
        let freq_sum: f64 = hist.distribution().iter().sum();
        assert!((freq_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_distribution_approaches_stationary_on_expander() {
        let g = generators::complete(8).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let hist = engine.endpoint_histogram(3, 6, 20_000, &mut rng);
        let stationary: Vec<f64> = g.nodes().map(|v| g.stationary(v)).collect();
        assert!(hist.total_variation_from(&stationary) < 0.03);
    }

    #[test]
    fn cost_accounting_tracks_steps_and_walks() {
        let g = generators::cycle(9).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        engine.endpoint_samples(0, 4, 10, &mut rng);
        assert_eq!(engine.total_walks(), 10);
        assert_eq!(engine.total_steps(), 40);
        engine.visit_counts(0, 2, 5, &mut rng);
        assert_eq!(engine.total_walks(), 15);
        assert_eq!(engine.total_steps(), 50);
    }

    #[test]
    fn visit_counts_on_star_alternate_between_hub_and_leaves() {
        // Walks from a leaf of a star visit the hub on every odd step.
        let g = generators::star(6).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let walks = 500;
        let len = 4;
        let counts = engine.visit_counts(1, len, walks, &mut rng);
        assert_eq!(
            counts[0],
            walks * (len as u64) / 2,
            "hub visited every other step"
        );
        let leaf_total: u64 = counts[1..].iter().sum();
        assert_eq!(leaf_total, walks * (len as u64) / 2);
    }

    #[test]
    fn zero_walks_and_zero_length_are_handled() {
        let g = generators::complete(4).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let hist = engine.endpoint_histogram(2, 5, 0, &mut rng);
        assert_eq!(hist.num_walks(), 0);
        assert_eq!(hist.frequency(2), 0.0);
        assert_eq!(hist.distribution(), vec![0.0; 4]);
        let hist = engine.endpoint_histogram(2, 0, 50, &mut rng);
        assert_eq!(hist.count(2), 50, "length-0 walks end where they start");
    }

    #[test]
    fn bulk_operations_are_thread_count_invariant() {
        let g = generators::social_network_like(200, 8.0, 3).unwrap();
        let run = |threads: usize| {
            let mut engine = WalkEngine::new(&g).with_threads(threads);
            let mut rng = StdRng::seed_from_u64(0xdeed);
            let hist = engine.endpoint_histogram(0, 12, 5_000, &mut rng);
            let visits = engine.visit_counts(1, 8, 3_000, &mut rng);
            let samples = engine.endpoint_samples(2, 5, 2_500, &mut rng);
            (hist, visits, samples, engine.total_steps())
        };
        let base = run(1);
        for threads in [2, 8] {
            let other = run(threads);
            assert_eq!(base.0, other.0, "histogram differs at {threads} threads");
            assert_eq!(base.1, other.1, "visit counts differ at {threads} threads");
            assert_eq!(base.2, other.2, "samples differ at {threads} threads");
            assert_eq!(
                base.3, other.3,
                "step accounting differs at {threads} threads"
            );
        }
    }

    #[test]
    fn repeated_bulk_calls_reuse_scratch_without_stale_counts() {
        // The second call reuses the pooled scratch of the first; its counts
        // must match a fresh engine's bit for bit.
        let g = generators::social_network_like(150, 9.0, 6).unwrap();
        let mut engine = WalkEngine::new(&g).with_threads(2);
        let mut rng = StdRng::seed_from_u64(10);
        let first = engine.endpoint_histogram(0, 7, 2_000, &mut rng);
        assert!(engine.scratch_pool().idle() > 0, "scratch returned to pool");
        let second = engine.endpoint_histogram(0, 7, 2_000, &mut rng);
        let visits = engine.visit_counts(3, 5, 1_500, &mut rng);

        // Replay each call on a brand-new engine (whose pool has never been
        // used) with the caller RNG advanced to the same point: the reused
        // scratches must not have leaked any counts between calls.
        let mut replay_rng = StdRng::seed_from_u64(10);
        let fresh_first =
            WalkEngine::new(&g)
                .with_threads(2)
                .endpoint_histogram(0, 7, 2_000, &mut replay_rng);
        let fresh_second =
            WalkEngine::new(&g)
                .with_threads(2)
                .endpoint_histogram(0, 7, 2_000, &mut replay_rng);
        let fresh_visits =
            WalkEngine::new(&g)
                .with_threads(2)
                .visit_counts(3, 5, 1_500, &mut replay_rng);
        assert_eq!(first, fresh_first);
        assert_eq!(second, fresh_second);
        assert_eq!(visits, fresh_visits);
    }

    #[test]
    fn engine_is_send_sync_and_clonable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<WalkEngine>();
    }
}
