//! Batched random-walk execution with buffer reuse.
//!
//! The Monte Carlo estimators simulate the same kind of walk thousands of
//! times per query. Allocating a fresh `Vec` per walk is both slow and noisy
//! for benchmarking, so [`WalkEngine`] owns the scratch buffers and exposes
//! bulk operations:
//!
//! * [`WalkEngine::endpoint_histogram`] — how often each node is the endpoint
//!   of a length-`len` walk (TP's estimate of `p_len(s, ·)`),
//! * [`WalkEngine::visit_counts`] — how often each node is visited anywhere
//!   along the walk (AMC's weighted sums over visited nodes),
//! * [`WalkEngine::endpoint_samples`] — raw endpoints, for estimators that
//!   post-process the sample (e.g. collision counting in TPC).

use er_graph::{Graph, NodeId};
use rand::Rng;

/// Histogram of walk endpoints over the node set.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointHistogram {
    counts: Vec<u64>,
    walks: u64,
}

impl EndpointHistogram {
    /// Number of walks aggregated into the histogram.
    pub fn num_walks(&self) -> u64 {
        self.walks
    }

    /// Raw endpoint count of node `v`.
    pub fn count(&self, v: NodeId) -> u64 {
        self.counts[v]
    }

    /// Empirical endpoint probability of node `v` (0 when no walks were run).
    pub fn frequency(&self, v: NodeId) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.counts[v] as f64 / self.walks as f64
        }
    }

    /// The empirical endpoint distribution as a dense probability vector.
    pub fn distribution(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|v| self.frequency(v)).collect()
    }

    /// Total variation distance between the empirical endpoint distribution
    /// and an arbitrary reference distribution (e.g. the stationary
    /// distribution π).
    pub fn total_variation_from(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.counts.len());
        0.5 * reference
            .iter()
            .enumerate()
            .map(|(v, &p)| (self.frequency(v) - p).abs())
            .sum::<f64>()
    }
}

/// Reusable executor for batches of simple random walks on one graph.
#[derive(Debug)]
pub struct WalkEngine<'g> {
    graph: &'g Graph,
    /// Total number of walk steps taken since construction (cost accounting).
    steps: u64,
    /// Total number of walks simulated since construction.
    walks: u64,
}

impl<'g> WalkEngine<'g> {
    /// Creates an engine over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        WalkEngine {
            graph,
            steps: 0,
            walks: 0,
        }
    }

    /// The graph the engine walks on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Total number of walk steps taken so far.
    pub fn total_steps(&self) -> u64 {
        self.steps
    }

    /// Total number of walks simulated so far.
    pub fn total_walks(&self) -> u64 {
        self.walks
    }

    /// Simulates one length-`len` walk and returns its endpoint.
    pub fn endpoint<R: Rng + ?Sized>(&mut self, start: NodeId, len: usize, rng: &mut R) -> NodeId {
        let mut current = start;
        for _ in 0..len {
            match self.graph.random_neighbor(current, rng) {
                Some(next) => {
                    current = next;
                    self.steps += 1;
                }
                None => break,
            }
        }
        self.walks += 1;
        current
    }

    /// Runs `num_walks` length-`len` walks from `start` and returns the raw
    /// endpoint samples.
    pub fn endpoint_samples<R: Rng + ?Sized>(
        &mut self,
        start: NodeId,
        len: usize,
        num_walks: u64,
        rng: &mut R,
    ) -> Vec<NodeId> {
        (0..num_walks).map(|_| self.endpoint(start, len, rng)).collect()
    }

    /// Runs `num_walks` length-`len` walks from `start` and histograms their
    /// endpoints — an empirical estimate of the distribution `p_len(start, ·)`.
    pub fn endpoint_histogram<R: Rng + ?Sized>(
        &mut self,
        start: NodeId,
        len: usize,
        num_walks: u64,
        rng: &mut R,
    ) -> EndpointHistogram {
        let mut counts = vec![0u64; self.graph.num_nodes()];
        for _ in 0..num_walks {
            counts[self.endpoint(start, len, rng)] += 1;
        }
        EndpointHistogram {
            counts,
            walks: num_walks,
        }
    }

    /// Runs `num_walks` length-`len` walks from `start` and counts how many
    /// times each node is visited across all steps of all walks (step 0, the
    /// start node itself, is not counted — matching the `i ≥ 1` sums of
    /// Eq. (12) in the paper).
    pub fn visit_counts<R: Rng + ?Sized>(
        &mut self,
        start: NodeId,
        len: usize,
        num_walks: u64,
        rng: &mut R,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; self.graph.num_nodes()];
        for _ in 0..num_walks {
            let mut current = start;
            for _ in 0..len {
                match self.graph.random_neighbor(current, rng) {
                    Some(next) => {
                        current = next;
                        counts[current] += 1;
                        self.steps += 1;
                    }
                    None => break,
                }
            }
            self.walks += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_counts_and_frequencies_are_consistent() {
        let g = generators::complete(5).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let hist = engine.endpoint_histogram(0, 3, 4_000, &mut rng);
        assert_eq!(hist.num_walks(), 4_000);
        let total: u64 = (0..5).map(|v| hist.count(v)).sum();
        assert_eq!(total, 4_000);
        let freq_sum: f64 = hist.distribution().iter().sum();
        assert!((freq_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_distribution_approaches_stationary_on_expander() {
        let g = generators::complete(8).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let hist = engine.endpoint_histogram(3, 6, 20_000, &mut rng);
        let stationary: Vec<f64> = g.nodes().map(|v| g.stationary(v)).collect();
        assert!(hist.total_variation_from(&stationary) < 0.03);
    }

    #[test]
    fn cost_accounting_tracks_steps_and_walks() {
        let g = generators::cycle(9).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        engine.endpoint_samples(0, 4, 10, &mut rng);
        assert_eq!(engine.total_walks(), 10);
        assert_eq!(engine.total_steps(), 40);
        engine.visit_counts(0, 2, 5, &mut rng);
        assert_eq!(engine.total_walks(), 15);
        assert_eq!(engine.total_steps(), 50);
    }

    #[test]
    fn visit_counts_on_star_alternate_between_hub_and_leaves() {
        // Walks from a leaf of a star visit the hub on every odd step.
        let g = generators::star(6).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let walks = 500;
        let len = 4;
        let counts = engine.visit_counts(1, len, walks, &mut rng);
        assert_eq!(counts[0], walks * (len as u64) / 2, "hub visited every other step");
        let leaf_total: u64 = counts[1..].iter().sum();
        assert_eq!(leaf_total, walks * (len as u64) / 2);
    }

    #[test]
    fn zero_walks_and_zero_length_are_handled() {
        let g = generators::complete(4).unwrap();
        let mut engine = WalkEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let hist = engine.endpoint_histogram(2, 5, 0, &mut rng);
        assert_eq!(hist.num_walks(), 0);
        assert_eq!(hist.frequency(2), 0.0);
        let hist = engine.endpoint_histogram(2, 0, 50, &mut rng);
        assert_eq!(hist.count(2), 50, "length-0 walks end where they start");
    }
}
