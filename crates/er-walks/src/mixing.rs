//! Empirical mixing-time estimation.
//!
//! Section 3.1 of the paper motivates the refined maximum walk length ℓ by the
//! *mixing time* ξ_s of each query node: once walks from `s` and `t` have
//! mixed, longer walks contribute nothing to `r_ℓ(s, t)`. The exact mixing
//! time needs the full spectrum, but an empirical estimate — run many walks of
//! increasing length and measure the total-variation distance of the endpoint
//! distribution from the stationary distribution π — is cheap and useful both
//! for diagnostics and for validating the refined ℓ of Theorem 3.1 in tests.

use crate::engine::WalkEngine;
use er_graph::{Graph, NodeId};
use rand::Rng;

/// Total-variation distance to the stationary distribution for a range of
/// walk lengths, all starting from the same source node.
#[derive(Clone, Debug)]
pub struct MixingProfile {
    /// The source node the walks start from.
    pub source: NodeId,
    /// `distances[i]` is the empirical TV distance after `i + 1` steps.
    pub distances: Vec<f64>,
    /// Number of walks simulated per length.
    pub walks_per_length: u64,
}

impl MixingProfile {
    /// The smallest length whose empirical TV distance drops below
    /// `threshold`, if any length in the profile does.
    pub fn mixing_time(&self, threshold: f64) -> Option<usize> {
        self.distances
            .iter()
            .position(|&d| d < threshold)
            .map(|i| i + 1)
    }

    /// The longest length covered by the profile.
    pub fn max_length(&self) -> usize {
        self.distances.len()
    }
}

/// Estimates the total-variation distance `‖ p_len(source, ·) − π ‖_TV` for
/// every length `1..=max_length`, using `walks_per_length` endpoint samples
/// per length.
///
/// The estimate is biased upwards by sampling noise (roughly
/// `√(n / walks_per_length)`), so thresholds should not be taken too close
/// to zero on large graphs; for the diagnostic purpose here that bias is
/// acceptable and documented.
pub fn empirical_mixing_profile<R: Rng + ?Sized>(
    graph: &Graph,
    source: NodeId,
    max_length: usize,
    walks_per_length: u64,
    rng: &mut R,
) -> MixingProfile {
    let stationary: Vec<f64> = graph.nodes().map(|v| graph.stationary(v)).collect();
    let mut engine = WalkEngine::new(graph);
    let distances = (1..=max_length)
        .map(|len| {
            engine
                .endpoint_histogram(source, len, walks_per_length, rng)
                .total_variation_from(&stationary)
        })
        .collect();
    MixingProfile {
        source,
        distances,
        walks_per_length,
    }
}

/// Convenience wrapper: the smallest walk length at which the empirical
/// endpoint distribution is within `threshold` total-variation distance of
/// stationary, or `None` if that never happens within `max_length` steps.
pub fn empirical_mixing_time<R: Rng + ?Sized>(
    graph: &Graph,
    source: NodeId,
    max_length: usize,
    walks_per_length: u64,
    threshold: f64,
    rng: &mut R,
) -> Option<usize> {
    empirical_mixing_profile(graph, source, max_length, walks_per_length, rng)
        .mixing_time(threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_mixes_almost_immediately() {
        let g = generators::complete(10).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let profile = empirical_mixing_profile(&g, 0, 5, 20_000, &mut rng);
        assert_eq!(profile.max_length(), 5);
        // After two steps the distribution is essentially uniform.
        assert!(profile.distances[1] < 0.05, "tv = {}", profile.distances[1]);
        let mixing = profile.mixing_time(0.1).expect("K_10 mixes within 5 steps");
        assert!(mixing <= 2, "mixing time {mixing}");
    }

    #[test]
    fn lollipop_tail_mixes_slower_than_clique_core() {
        // Walks started deep in the tail of a lollipop need to find the clique
        // before they can mix; walks started inside the clique mix quickly.
        let g = generators::lollipop(12, 12).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let tail_end = g.num_nodes() - 1;
        let clique_node = 0;
        let from_clique = empirical_mixing_profile(&g, clique_node, 30, 3_000, &mut rng);
        let from_tail = empirical_mixing_profile(&g, tail_end, 30, 3_000, &mut rng);
        let clique_tv_at_10 = from_clique.distances[9];
        let tail_tv_at_10 = from_tail.distances[9];
        assert!(
            tail_tv_at_10 > clique_tv_at_10,
            "tail should be farther from stationary after 10 steps ({tail_tv_at_10} vs {clique_tv_at_10})"
        );
    }

    #[test]
    fn mixing_time_is_none_when_threshold_unreachable() {
        let g = generators::cycle(51).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // A 51-cycle needs Θ(n²) steps to mix; 5 steps is hopeless.
        assert_eq!(empirical_mixing_time(&g, 0, 5, 2_000, 0.05, &mut rng), None);
    }

    #[test]
    fn profile_distances_are_valid_tv_values() {
        let g = generators::barabasi_albert(200, 3, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let profile = empirical_mixing_profile(&g, 7, 12, 500, &mut rng);
        for &d in &profile.distances {
            assert!((0.0..=1.0).contains(&d));
        }
        assert_eq!(profile.walks_per_length, 500);
        assert_eq!(profile.source, 7);
    }
}
