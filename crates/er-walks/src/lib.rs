//! Random-walk engine for effective-resistance estimation.
//!
//! Every Monte Carlo estimator in the paper is built from one of a handful of
//! walk primitives, which live here so `er-core` can stay focused on the
//! estimation logic:
//!
//! * [`truncated`] — fixed-length simple random walks (AMC's Algorithm 1,
//!   TP's per-length walks, TPC's half-length collision walks).
//! * [`hitting`] — first-hit and escape-probability walks (the MC and MC2
//!   baselines, which walk until they reach the target or return to the
//!   source), as single-walk references plus lane-batched bulk trials on
//!   the kernel's variable-length lockstep driver.
//! * [`spanning`] — uniform spanning-tree sampling with Wilson's algorithm
//!   (the HAY baseline: `r(e) = Pr[e ∈ UST]`), as a single-tree reference
//!   plus a multi-root lockstep driver that grows many trees at once with
//!   per-tree draw schedules preserved bit for bit.
//!
//! * [`kernel`] — the zero-allocation walk kernel: per-walk
//!   [`kernel::StreamRng`] streams, division-free CSR stepping
//!   with lane-interleaved batching, and reusable epoch-stamped sparse
//!   tallies ([`kernel::WalkScratch`] / [`kernel::ScratchPool`]).
//! * [`par`] — the deterministic parallel sampling layer: indexed fan-out of
//!   sampling tasks over scoped threads with per-task RNG streams derived from
//!   `(seed, index)`, bit-identical at any thread count.
//!
//! All primitives take an explicit `&mut impl Rng`, so estimators control
//! seeding and reproducibility end to end; the bulk operations additionally
//! accept a thread count and guarantee the result does not depend on it.

// `deny` rather than `forbid`: the walk kernel's prefetch helper needs one
// `_mm_prefetch` intrinsic behind a scoped `#[allow(unsafe_code)]` (prefetch
// has no architectural effect beyond the cache); everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod hitting;
pub mod kernel;
pub mod mixing;
pub mod par;
pub mod spanning;
pub mod truncated;

pub use engine::{EndpointHistogram, WalkEngine};
pub use hitting::{
    escape_trials, escape_walk, first_hit_trials, first_hit_walk, EscapeOutcome, EscapeTally,
    FirstHitOutcome, FirstHitTally,
};
pub use kernel::{LaneWidth, ScratchPool, StreamRng, WalkKernel, WalkScratch};
pub use mixing::{empirical_mixing_profile, empirical_mixing_time, MixingProfile};
pub use par::{
    mix_seed, par_fold_indexed, par_fold_ranges, par_map_indexed, resolve_threads, stream_rng,
};
pub use spanning::{
    sample_spanning_tree, sample_spanning_trees, sample_spanning_trees_on, SpanningTree,
};
pub use truncated::{walk_accumulate, walk_endpoint, walk_nodes};
