//! First-hit and escape-probability walks (the MC and MC2 baselines).
//!
//! Two layers live here:
//!
//! * Single-walk reference functions ([`escape_walk`], [`first_hit_walk`])
//!   that step one walk at a time — the executable specification the batch
//!   layer is tested against, and still the right tool for one-off trials.
//! * Lane-batched bulk trials ([`escape_trials`], [`first_hit_trials`],
//!   [`commute_trials`]) that run whole trial budgets on the zero-allocation
//!   kernel's variable-length lockstep driver
//!   ([`WalkKernel::batch_until`](crate::kernel::WalkKernel::batch_until)):
//!   every lane carries its own termination predicate and retired lanes are
//!   refilled immediately, so the dependent cache-miss chains of concurrent
//!   walks overlap from the first trial to the last. Trial `i` draws from
//!   stream `(seed, i)` with exactly the draw schedule of the single-walk
//!   functions, so the MC and MC2 estimators produced bit-identical values
//!   when they moved onto this path; the `threads` fan-out uses
//!   [`par::par_fold_ranges`] with commutative integer tallies, so results
//!   are also bit-identical at any thread count.

use crate::kernel::WalkKernel;
use crate::par;
use er_graph::{Graph, NodeId};
use rand::Rng;

/// Outcome of an escape-probability walk used by the MC baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscapeOutcome {
    /// The walk reached the target `t` before returning to the source `s`.
    ReachedTarget {
        /// Number of steps taken.
        steps: usize,
    },
    /// The walk returned to `s` before reaching `t`.
    ReturnedToSource {
        /// Number of steps taken.
        steps: usize,
    },
    /// The step cap was hit before either event (reported so callers can
    /// account for truncation instead of silently mislabelling the walk).
    Truncated,
}

/// Runs one escape-probability trial for the MC estimator: start at `s`, take
/// simple random-walk steps, and stop on the first return to `s` or the first
/// visit to `t`.
///
/// The escape probability `Pr[hit t before returning to s]` equals
/// `1 / (d(s) · r(s, t))`, which is the identity the MC baseline inverts.
/// `max_steps` guards against pathologically long excursions (the paper's MC
/// has no cap and its worst-case time reflects that; the cap only matters for
/// adversarial inputs and is reported via [`EscapeOutcome::Truncated`]).
pub fn escape_walk<R: Rng + ?Sized>(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    rng: &mut R,
) -> EscapeOutcome {
    debug_assert_ne!(s, t);
    let mut current = s;
    for step in 1..=max_steps {
        current = match graph.random_neighbor(current, rng) {
            Some(next) => next,
            None => return EscapeOutcome::Truncated,
        };
        if current == t {
            return EscapeOutcome::ReachedTarget { steps: step };
        }
        if current == s {
            return EscapeOutcome::ReturnedToSource { steps: step };
        }
    }
    EscapeOutcome::Truncated
}

/// Outcome tallies of a bulk escape-trial run ([`escape_trials`]).
///
/// Field-wise integer addition is the merge, so tallies are commutative and
/// the parallel fan-out is thread-count invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EscapeTally {
    /// Walks that reached `t` before returning to `s` (the "escapes").
    pub reached: u64,
    /// Walks that returned to `s` first.
    pub returned: u64,
    /// Walks that hit the step cap (or an isolated node) undecided.
    pub truncated: u64,
    /// Total steps charged: actual steps for decided walks, `max_steps` for
    /// truncated ones — the accounting the MC estimator has always used.
    pub steps: u64,
}

impl EscapeTally {
    /// Total number of trials tallied.
    pub fn trials(&self) -> u64 {
        self.reached + self.returned + self.truncated
    }

    fn merge(&mut self, other: EscapeTally) {
        self.reached += other.reached;
        self.returned += other.returned;
        self.truncated += other.truncated;
        self.steps += other.steps;
    }
}

/// Runs `trials` escape-probability trials for the pair `(s, t)` on the
/// lane-batched kernel, fanned out over `threads` workers (0 = all cores).
///
/// Trial `i` draws from RNG stream `(seed, i)` with exactly the draw
/// schedule of [`escape_walk`], so the tally is a pure function of
/// `(graph, s, t, max_steps, trials, seed)` — bit-identical at any thread
/// count and any [`LaneWidth`](crate::kernel::LaneWidth).
pub fn escape_trials(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    trials: u64,
    seed: u64,
    threads: usize,
) -> EscapeTally {
    debug_assert_ne!(s, t);
    let kernel = WalkKernel::new(graph);
    par::par_fold_ranges(
        trials,
        threads,
        EscapeTally::default,
        |range, tally: &mut EscapeTally| {
            kernel.batch_until(
                s,
                max_steps,
                seed,
                range,
                &|_prev, next, _steps, _flags: &mut u64| {
                    if next == t {
                        Some(true)
                    } else if next == s {
                        Some(false)
                    } else {
                        None
                    }
                },
                &mut |_, verdict, steps| match verdict {
                    Some(true) => {
                        tally.reached += 1;
                        tally.steps += steps;
                    }
                    Some(false) => {
                        tally.returned += 1;
                        tally.steps += steps;
                    }
                    None => {
                        tally.truncated += 1;
                        tally.steps += max_steps as u64;
                    }
                },
            );
        },
        |total, part| total.merge(part),
    )
}

/// Outcome of a first-hit walk used by the MC2 baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirstHitOutcome {
    /// The walk reached `t`; `via_direct_edge` records whether the final step
    /// used the edge `(s, t)` itself (i.e. the walk was at `s` and stepped to
    /// `t`), which is the event whose probability equals `r(s, t)` for
    /// `(s, t) ∈ E`.
    Hit {
        /// Whether the arriving step traversed the query edge `(s, t)`.
        via_direct_edge: bool,
        /// Number of steps taken.
        steps: usize,
    },
    /// The step cap was reached before hitting `t`.
    Truncated,
}

/// Runs one first-hit trial for the MC2 estimator: walk from `s` until the
/// first visit to `t` and report whether the arriving step used edge `(s, t)`.
pub fn first_hit_walk<R: Rng + ?Sized>(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    rng: &mut R,
) -> FirstHitOutcome {
    debug_assert_ne!(s, t);
    let mut current = s;
    for step in 1..=max_steps {
        let next = match graph.random_neighbor(current, rng) {
            Some(next) => next,
            None => return FirstHitOutcome::Truncated,
        };
        if next == t {
            return FirstHitOutcome::Hit {
                via_direct_edge: current == s,
                steps: step,
            };
        }
        current = next;
    }
    FirstHitOutcome::Truncated
}

/// Outcome tallies of a bulk first-hit run ([`first_hit_trials`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FirstHitTally {
    /// Walks whose first visit to `t` arrived over the edge `(s, t)` itself.
    pub via_edge: u64,
    /// Walks that hit `t` by any other arriving step.
    pub indirect: u64,
    /// Walks that hit the step cap (or an isolated node) before reaching `t`.
    pub truncated: u64,
    /// Total steps charged: actual steps for hits, `max_steps` for truncated
    /// walks.
    pub steps: u64,
}

impl FirstHitTally {
    /// Total number of trials tallied.
    pub fn trials(&self) -> u64 {
        self.via_edge + self.indirect + self.truncated
    }

    fn merge(&mut self, other: FirstHitTally) {
        self.via_edge += other.via_edge;
        self.indirect += other.indirect;
        self.truncated += other.truncated;
        self.steps += other.steps;
    }
}

/// Runs `trials` first-hit trials for the pair `(s, t)` on the lane-batched
/// kernel, fanned out over `threads` workers (0 = all cores). Same
/// determinism contract as [`escape_trials`]; per-trial draw schedule is
/// exactly [`first_hit_walk`]'s.
pub fn first_hit_trials(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    trials: u64,
    seed: u64,
    threads: usize,
) -> FirstHitTally {
    debug_assert_ne!(s, t);
    let kernel = WalkKernel::new(graph);
    par::par_fold_ranges(
        trials,
        threads,
        FirstHitTally::default,
        |range, tally: &mut FirstHitTally| {
            kernel.batch_until(
                s,
                max_steps,
                seed,
                range,
                &|prev, next, _steps, _flags: &mut u64| (next == t).then_some(prev == s),
                &mut |_, verdict, steps| match verdict {
                    Some(true) => {
                        tally.via_edge += 1;
                        tally.steps += steps;
                    }
                    Some(false) => {
                        tally.indirect += 1;
                        tally.steps += steps;
                    }
                    None => {
                        tally.truncated += 1;
                        tally.steps += max_steps as u64;
                    }
                },
            );
        },
        |total, part| total.merge(part),
    )
}

/// Outcome tallies of a bulk commute-time run ([`commute_trials`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommuteTally {
    /// Round trips `s → t → s` completed within the step cap.
    pub completed: u64,
    /// Total steps of the completed round trips.
    pub completed_steps: u64,
    /// Walks that hit the step cap mid-trip.
    pub truncated: u64,
}

/// Runs `trials` round-trip (`s → t → s`) walks on the lane-batched kernel
/// and tallies the completed commute lengths. The per-lane flag word of the
/// variable-length driver carries the "has visited `t` yet" bit, the state a
/// round-trip predicate needs.
pub fn commute_trials(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    trials: u64,
    seed: u64,
    threads: usize,
) -> CommuteTally {
    debug_assert_ne!(s, t);
    let kernel = WalkKernel::new(graph);
    par::par_fold_ranges(
        trials,
        threads,
        CommuteTally::default,
        |range, tally: &mut CommuteTally| {
            kernel.batch_until(
                s,
                max_steps,
                seed,
                range,
                &|_prev, next, _steps, reached_t: &mut u64| {
                    if *reached_t == 0 {
                        if next == t {
                            *reached_t = 1;
                        }
                        None
                    } else if next == s {
                        Some(())
                    } else {
                        None
                    }
                },
                &mut |_, verdict, steps| match verdict {
                    Some(()) => {
                        tally.completed += 1;
                        tally.completed_steps += steps;
                    }
                    None => tally.truncated += 1,
                },
            );
        },
        |total, part| {
            total.completed += part.completed;
            total.completed_steps += part.completed_steps;
            total.truncated += part.truncated;
        },
    )
}

/// Estimates the commute time `c(s, t)` (expected steps of a round trip
/// `s → t → s`) from `trials` independent round-trip walks on the
/// lane-batched kernel. Returns `None` if every trial hit the step cap.
///
/// `r(s, t) = c(s, t) / 2m` gives yet another consistency check used by the
/// integration tests; this estimator is not part of the paper's evaluated
/// methods but documents the commute-time interpretation of Section 1.
pub fn commute_time_estimate(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    trials: usize,
    max_steps: usize,
    seed: u64,
    threads: usize,
) -> Option<f64> {
    if s == t {
        return Some(0.0);
    }
    let tally = commute_trials(graph, s, t, max_steps, trials as u64, seed, threads);
    if tally.completed == 0 {
        None
    } else {
        Some(tally.completed_steps as f64 / tally.completed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn escape_walk_terminates_with_named_outcome() {
        let g = generators::social_network_like(100, 8.0, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut reached = 0;
        let mut returned = 0;
        for _ in 0..200 {
            match escape_walk(&g, 0, 50, 100_000, &mut rng) {
                EscapeOutcome::ReachedTarget { steps } => {
                    assert!(steps >= 1);
                    reached += 1;
                }
                EscapeOutcome::ReturnedToSource { steps } => {
                    assert!(steps >= 2, "a return needs at least two steps");
                    returned += 1;
                }
                EscapeOutcome::Truncated => panic!("cap should not be hit on this graph"),
            }
        }
        assert!(reached > 0 && returned > 0);
    }

    #[test]
    fn escape_probability_matches_er_on_path_endpoints() {
        // On a 2-node path (single edge), r(0, 1) = 1 and d(0) = 1, so the
        // escape probability must be exactly 1: the first step always hits t.
        let g = generators::path(2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(matches!(
                escape_walk(&g, 0, 1, 10, &mut rng),
                EscapeOutcome::ReachedTarget { steps: 1 }
            ));
        }
        // The bulk tally agrees: every trial escapes in one step.
        let tally = escape_trials(&g, 0, 1, 10, 500, 7, 1);
        assert_eq!(tally.reached, 500);
        assert_eq!(tally.returned + tally.truncated, 0);
        assert_eq!(tally.steps, 500);
    }

    #[test]
    fn escape_probability_on_triangle() {
        // Triangle: r(s, t) = 2/3, d(s) = 2, escape prob = 1/(d(s) r) = 3/4.
        let g = generators::complete(3).unwrap();
        let trials = 40_000;
        let tally = escape_trials(&g, 0, 1, 10_000, trials, 11, 1);
        assert_eq!(tally.trials(), trials);
        assert_eq!(tally.truncated, 0);
        let p = tally.reached as f64 / trials as f64;
        assert!((p - 0.75).abs() < 0.01, "escape probability {p}");
    }

    #[test]
    fn first_hit_via_edge_probability_on_triangle() {
        // For an edge (s, t) of the triangle, r(s, t) = 2/3 equals the
        // probability the first visit to t arrives over the edge (s, t).
        let g = generators::complete(3).unwrap();
        let trials = 40_000;
        let tally = first_hit_trials(&g, 0, 1, 10_000, trials, 13, 1);
        assert_eq!(tally.trials(), trials);
        assert_eq!(tally.truncated, 0);
        let p = tally.via_edge as f64 / trials as f64;
        assert!(
            (p - 2.0 / 3.0).abs() < 0.01,
            "first-hit-via-edge probability {p}"
        );
    }

    #[test]
    fn bulk_trials_match_single_walk_outcomes_stream_for_stream() {
        // The bulk tallies must equal running the single-walk reference on
        // each trial's stream — the lanes only overlap memory accesses.
        let g = generators::social_network_like(150, 7.0, 4).unwrap();
        let (s, t, max_steps, seed) = (0, 75, 400, 0x5eed);
        for trials in [1u64, 5, 16, 61, 200] {
            let bulk = escape_trials(&g, s, t, max_steps, trials, seed, 1);
            let mut reference = EscapeTally::default();
            for i in 0..trials {
                let mut rng = crate::par::stream_rng(seed, i);
                match escape_walk(&g, s, t, max_steps, &mut rng) {
                    EscapeOutcome::ReachedTarget { steps } => {
                        reference.reached += 1;
                        reference.steps += steps as u64;
                    }
                    EscapeOutcome::ReturnedToSource { steps } => {
                        reference.returned += 1;
                        reference.steps += steps as u64;
                    }
                    EscapeOutcome::Truncated => {
                        reference.truncated += 1;
                        reference.steps += max_steps as u64;
                    }
                }
            }
            assert_eq!(bulk, reference, "{trials} escape trials");

            let bulk = first_hit_trials(&g, s, t, max_steps, trials, seed, 1);
            let mut reference = FirstHitTally::default();
            for i in 0..trials {
                let mut rng = crate::par::stream_rng(seed, i);
                match first_hit_walk(&g, s, t, max_steps, &mut rng) {
                    FirstHitOutcome::Hit {
                        via_direct_edge,
                        steps,
                    } => {
                        if via_direct_edge {
                            reference.via_edge += 1;
                        } else {
                            reference.indirect += 1;
                        }
                        reference.steps += steps as u64;
                    }
                    FirstHitOutcome::Truncated => {
                        reference.truncated += 1;
                        reference.steps += max_steps as u64;
                    }
                }
            }
            assert_eq!(bulk, reference, "{trials} first-hit trials");
        }
    }

    #[test]
    fn bulk_trials_are_thread_count_invariant() {
        let g = generators::social_network_like(200, 8.0, 9).unwrap();
        let base = escape_trials(&g, 0, 100, 10_000, 5_000, 42, 1);
        let base_hit = first_hit_trials(&g, 0, 100, 10_000, 3_000, 42, 1);
        let base_commute = commute_trials(&g, 0, 100, 100_000, 500, 42, 1);
        for threads in [2, 8] {
            assert_eq!(base, escape_trials(&g, 0, 100, 10_000, 5_000, 42, threads));
            assert_eq!(
                base_hit,
                first_hit_trials(&g, 0, 100, 10_000, 3_000, 42, threads)
            );
            assert_eq!(
                base_commute,
                commute_trials(&g, 0, 100, 100_000, 500, 42, threads)
            );
        }
    }

    #[test]
    fn truncation_is_reported() {
        let g = generators::path(50).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // 1-step cap cannot reach node 49 from node 0
        assert_eq!(
            escape_walk(&g, 0, 49, 1, &mut rng),
            EscapeOutcome::Truncated
        );
        assert_eq!(
            first_hit_walk(&g, 0, 49, 1, &mut rng),
            FirstHitOutcome::Truncated
        );
        let tally = escape_trials(&g, 0, 49, 1, 100, 5, 1);
        assert_eq!(tally.truncated, 100);
        assert_eq!(tally.steps, 100, "truncated walks charge max_steps each");
    }

    #[test]
    fn commute_time_matches_er_identity_on_triangle() {
        // c(s, t) = 2 m r(s, t) = 2 * 3 * 2/3 = 4 on the triangle.
        let g = generators::complete(3).unwrap();
        let c = commute_time_estimate(&g, 0, 1, 20_000, 100_000, 23, 1).unwrap();
        assert!((c - 4.0).abs() < 0.1, "commute time {c}");
        assert_eq!(commute_time_estimate(&g, 2, 2, 5, 10, 23, 1), Some(0.0));
        // An unreachable cap leaves no completed trips.
        let path = generators::path(40).unwrap();
        assert_eq!(commute_time_estimate(&path, 0, 39, 50, 2, 23, 1), None);
    }
}
