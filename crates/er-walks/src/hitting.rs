//! First-hit and escape-probability walks (the MC and MC2 baselines).

use er_graph::{Graph, NodeId};
use rand::Rng;

/// Outcome of an escape-probability walk used by the MC baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscapeOutcome {
    /// The walk reached the target `t` before returning to the source `s`.
    ReachedTarget {
        /// Number of steps taken.
        steps: usize,
    },
    /// The walk returned to `s` before reaching `t`.
    ReturnedToSource {
        /// Number of steps taken.
        steps: usize,
    },
    /// The step cap was hit before either event (reported so callers can
    /// account for truncation instead of silently mislabelling the walk).
    Truncated,
}

/// Runs one escape-probability trial for the MC estimator: start at `s`, take
/// simple random-walk steps, and stop on the first return to `s` or the first
/// visit to `t`.
///
/// The escape probability `Pr[hit t before returning to s]` equals
/// `1 / (d(s) · r(s, t))`, which is the identity the MC baseline inverts.
/// `max_steps` guards against pathologically long excursions (the paper's MC
/// has no cap and its worst-case time reflects that; the cap only matters for
/// adversarial inputs and is reported via [`EscapeOutcome::Truncated`]).
pub fn escape_walk<R: Rng + ?Sized>(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    rng: &mut R,
) -> EscapeOutcome {
    debug_assert_ne!(s, t);
    let mut current = s;
    for step in 1..=max_steps {
        current = match graph.random_neighbor(current, rng) {
            Some(next) => next,
            None => return EscapeOutcome::Truncated,
        };
        if current == t {
            return EscapeOutcome::ReachedTarget { steps: step };
        }
        if current == s {
            return EscapeOutcome::ReturnedToSource { steps: step };
        }
    }
    EscapeOutcome::Truncated
}

/// Outcome of a first-hit walk used by the MC2 baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirstHitOutcome {
    /// The walk reached `t`; `via_direct_edge` records whether the final step
    /// used the edge `(s, t)` itself (i.e. the walk was at `s` and stepped to
    /// `t`), which is the event whose probability equals `r(s, t)` for
    /// `(s, t) ∈ E`.
    Hit {
        /// Whether the arriving step traversed the query edge `(s, t)`.
        via_direct_edge: bool,
        /// Number of steps taken.
        steps: usize,
    },
    /// The step cap was reached before hitting `t`.
    Truncated,
}

/// Runs one first-hit trial for the MC2 estimator: walk from `s` until the
/// first visit to `t` and report whether the arriving step used edge `(s, t)`.
pub fn first_hit_walk<R: Rng + ?Sized>(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_steps: usize,
    rng: &mut R,
) -> FirstHitOutcome {
    debug_assert_ne!(s, t);
    let mut current = s;
    for step in 1..=max_steps {
        let next = match graph.random_neighbor(current, rng) {
            Some(next) => next,
            None => return FirstHitOutcome::Truncated,
        };
        if next == t {
            return FirstHitOutcome::Hit {
                via_direct_edge: current == s,
                steps: step,
            };
        }
        current = next;
    }
    FirstHitOutcome::Truncated
}

/// Estimates the commute time `c(s, t)` (expected steps of a round trip
/// `s → t → s`) from `trials` independent round-trip walks. Returns `None`
/// if every trial hit the step cap.
///
/// `r(s, t) = c(s, t) / 2m` gives yet another consistency check used by the
/// integration tests; this estimator is not part of the paper's evaluated
/// methods but documents the commute-time interpretation of Section 1.
pub fn commute_time_estimate<R: Rng + ?Sized>(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    trials: usize,
    max_steps: usize,
    rng: &mut R,
) -> Option<f64> {
    if s == t {
        return Some(0.0);
    }
    let mut total = 0usize;
    let mut completed = 0usize;
    for _ in 0..trials {
        let mut current = s;
        let mut steps = 0usize;
        let mut reached_t = false;
        let mut done = false;
        while steps < max_steps {
            current = graph.random_neighbor(current, rng)?;
            steps += 1;
            if !reached_t && current == t {
                reached_t = true;
            } else if reached_t && current == s {
                done = true;
                break;
            }
        }
        if done {
            total += steps;
            completed += 1;
        }
    }
    if completed == 0 {
        None
    } else {
        Some(total as f64 / completed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn escape_walk_terminates_with_named_outcome() {
        let g = generators::social_network_like(100, 8.0, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut reached = 0;
        let mut returned = 0;
        for _ in 0..200 {
            match escape_walk(&g, 0, 50, 100_000, &mut rng) {
                EscapeOutcome::ReachedTarget { steps } => {
                    assert!(steps >= 1);
                    reached += 1;
                }
                EscapeOutcome::ReturnedToSource { steps } => {
                    assert!(steps >= 2, "a return needs at least two steps");
                    returned += 1;
                }
                EscapeOutcome::Truncated => panic!("cap should not be hit on this graph"),
            }
        }
        assert!(reached > 0 && returned > 0);
    }

    #[test]
    fn escape_probability_matches_er_on_path_endpoints() {
        // On a 2-node path (single edge), r(0, 1) = 1 and d(0) = 1, so the
        // escape probability must be exactly 1: the first step always hits t.
        let g = generators::path(2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(matches!(
                escape_walk(&g, 0, 1, 10, &mut rng),
                EscapeOutcome::ReachedTarget { steps: 1 }
            ));
        }
    }

    #[test]
    fn escape_probability_on_triangle() {
        // Triangle: r(s, t) = 2/3, d(s) = 2, escape prob = 1/(d(s) r) = 3/4.
        let g = generators::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 40_000;
        let mut hits = 0;
        for _ in 0..trials {
            if matches!(
                escape_walk(&g, 0, 1, 10_000, &mut rng),
                EscapeOutcome::ReachedTarget { .. }
            ) {
                hits += 1;
            }
        }
        let p = hits as f64 / trials as f64;
        assert!((p - 0.75).abs() < 0.01, "escape probability {p}");
    }

    #[test]
    fn first_hit_via_edge_probability_on_triangle() {
        // For an edge (s, t) of the triangle, r(s, t) = 2/3 equals the
        // probability the first visit to t arrives over the edge (s, t).
        let g = generators::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 40_000;
        let mut direct = 0;
        for _ in 0..trials {
            match first_hit_walk(&g, 0, 1, 10_000, &mut rng) {
                FirstHitOutcome::Hit {
                    via_direct_edge, ..
                } => {
                    if via_direct_edge {
                        direct += 1;
                    }
                }
                FirstHitOutcome::Truncated => panic!("no truncation expected"),
            }
        }
        let p = direct as f64 / trials as f64;
        assert!(
            (p - 2.0 / 3.0).abs() < 0.01,
            "first-hit-via-edge probability {p}"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let g = generators::path(50).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // 1-step cap cannot reach node 49 from node 0
        assert_eq!(
            escape_walk(&g, 0, 49, 1, &mut rng),
            EscapeOutcome::Truncated
        );
        assert_eq!(
            first_hit_walk(&g, 0, 49, 1, &mut rng),
            FirstHitOutcome::Truncated
        );
    }

    #[test]
    fn commute_time_matches_er_identity_on_triangle() {
        // c(s, t) = 2 m r(s, t) = 2 * 3 * 2/3 = 4 on the triangle.
        let g = generators::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let c = commute_time_estimate(&g, 0, 1, 20_000, 100_000, &mut rng).unwrap();
        assert!((c - 4.0).abs() < 0.1, "commute time {c}");
        assert_eq!(commute_time_estimate(&g, 2, 2, 5, 10, &mut rng), Some(0.0));
    }
}
