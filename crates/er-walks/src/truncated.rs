//! Fixed-length ("truncated") simple random walks.
//!
//! A truncated walk of length ℓ from `u` is the sequence of ℓ nodes visited
//! at steps 1..=ℓ (the start node is *not* included, matching Lemma 3.3 of
//! the paper, where a length-ℓ_f walk "contains ℓ_f visited nodes").

use crate::kernel::WalkKernel;
use er_graph::{Graph, NodeId};
use rand::Rng;

/// Performs a length-`len` simple random walk from `start` and calls `visit`
/// on each of the `len` visited nodes (steps 1..=len).
///
/// This is the allocation-free primitive behind AMC's inner loop: the caller
/// accumulates `Σ_{u ∈ walk} (s(u)/d(s) − t(u)/d(t))` directly. Stepping goes
/// through the [`crate::kernel`], which loads each CSR row once and picks the
/// neighbour with a division-free widening multiply.
///
/// If the walk reaches an isolated node it stops early (cannot happen on the
/// connected graphs the estimators require, but the primitive stays total).
#[inline]
pub fn walk_accumulate<R: Rng + ?Sized>(
    graph: &Graph,
    start: NodeId,
    len: usize,
    rng: &mut R,
    visit: impl FnMut(NodeId),
) {
    WalkKernel::new(graph).for_each_visit(start, len, rng, visit);
}

/// Performs a length-`len` walk from `start` and returns the visited nodes
/// (steps 1..=len) as a vector.
pub fn walk_nodes<R: Rng + ?Sized>(
    graph: &Graph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut nodes = Vec::with_capacity(len);
    walk_accumulate(graph, start, len, rng, |v| nodes.push(v));
    nodes
}

/// Returns only the endpoint of a length-`len` walk from `start`
/// (the node visited at step `len`; `start` itself for `len == 0`).
///
/// TP estimates `p_i(s, t)` as the fraction of length-`i` walks from `s`
/// whose endpoint is `t`, so it only needs this cheaper primitive.
#[inline]
pub fn walk_endpoint<R: Rng + ?Sized>(
    graph: &Graph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> NodeId {
    WalkKernel::new(graph).endpoint(start, len, rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walk_has_requested_length_and_valid_steps() {
        let g = generators::social_network_like(200, 8.0, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for &len in &[1usize, 5, 20] {
            let w = walk_nodes(&g, 3, len, &mut rng);
            assert_eq!(w.len(), len);
            let mut prev = 3;
            for &v in &w {
                assert!(g.has_edge(prev, v), "step {prev} -> {v} must be an edge");
                prev = v;
            }
        }
    }

    #[test]
    fn walk_excludes_start_node_at_step_zero() {
        // On a star, a walk from a leaf alternates leaf -> hub -> leaf -> ...
        let g = generators::star(5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let w = walk_nodes(&g, 2, 4, &mut rng);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], 0, "first visited node is the hub");
        assert_ne!(w[1], 0, "second visited node is a leaf");
        assert_eq!(w[2], 0);
    }

    #[test]
    fn endpoint_matches_last_visited_node_for_same_rng_stream() {
        let g = generators::barabasi_albert(100, 3, 9).unwrap();
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let nodes = walk_nodes(&g, 10, 15, &mut rng1);
        let end = walk_endpoint(&g, 10, 15, &mut rng2);
        assert_eq!(*nodes.last().unwrap(), end);
    }

    #[test]
    fn zero_length_walk_visits_nothing() {
        let g = generators::complete(4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(walk_nodes(&g, 1, 0, &mut rng).is_empty());
        assert_eq!(walk_endpoint(&g, 1, 0, &mut rng), 1);
    }

    #[test]
    fn walk_stops_at_isolated_node() {
        // node 2 is isolated; a walk starting there goes nowhere.
        let g = er_graph::GraphBuilder::new(3)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(walk_nodes(&g, 2, 5, &mut rng).is_empty());
        assert_eq!(walk_endpoint(&g, 2, 5, &mut rng), 2);
    }

    #[test]
    fn endpoint_distribution_converges_to_stationary_on_complete_graph() {
        // On K_n the walk mixes in one step; endpoints should be uniform over
        // the other nodes.
        let g = generators::complete(6).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 6];
        let trials = 30_000;
        for _ in 0..trials {
            counts[walk_endpoint(&g, 0, 3, &mut rng)] += 1;
        }
        // long-run frequency of each node ≈ its stationary probability 1/6;
        // parity effects are absent because K_6 is non-bipartite.
        for (v, &count) in counts.iter().enumerate() {
            let freq = count as f64 / trials as f64;
            let expected = if v == 0 {
                0.2 * 0.2 + 0.8 * 0.16
            } else {
                1.0 / 6.0
            };
            // loose check: within 4 percentage points of 1/6
            let _ = expected;
            assert!((freq - 1.0 / 6.0).abs() < 0.04, "node {v} freq {freq}");
        }
    }
}
