//! Deterministic parallel execution of indexed sampling tasks.
//!
//! Every Monte Carlo loop in the workspace has the same shape: run `n`
//! independent sampling tasks (walk pairs, escape trials, spanning trees,
//! per-edge queries) and fold their results into an accumulator. This module
//! fans those loops out over a pool of scoped threads while keeping the output
//! **bit-identical for a fixed seed at any thread count**, including one:
//!
//! * Task `i` draws its randomness from a private RNG stream derived by a
//!   SplitMix64 mix of `(seed, i)` ([`stream_rng`], a
//!   [`crate::kernel::StreamRng`] from the walk kernel), so no
//!   task's randomness depends on which thread runs it or on how many tasks
//!   ran before it.
//! * Tasks are grouped into fixed-size chunks ([`CHUNK`]) whose boundaries
//!   depend only on `n`, never on the thread count. Each chunk folds its tasks
//!   in index order; chunk results are then merged in chunk order on the
//!   calling thread. Floating-point accumulation order is therefore a pure
//!   function of `(n, seed)`.
//!
//! The thread pool is a simple atomic work queue over `std::thread::scope`
//! (the build environment has no crates.io access, so `rayon` is unavailable;
//! scoped threads also let tasks borrow the graph directly). Workers steal
//! whole chunks, so load imbalance is bounded by one chunk per worker.

use crate::kernel::StreamRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Thread-count value meaning "use all available cores".
pub const AUTO: usize = 0;

/// Number of indexed tasks per chunk. Fixed (never derived from the thread
/// count) so the merge tree — and hence every floating-point sum — is
/// identical at any parallelism level.
pub const CHUNK: u64 = 1024;

/// The machine's available parallelism, resolved once per process.
///
/// `std::thread::available_parallelism` can hit the filesystem (cgroup
/// limits) on every call, and [`resolve_threads`] sits in per-query loops, so
/// the lookup is cached behind a `OnceLock`.
fn available_parallelism_cached() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Resolves a `threads` knob: [`AUTO`] (0) becomes the number of available
/// cores; explicit values are clamped to a sane ceiling (8× the available
/// cores, at least 64) so a wild `--threads` value cannot exhaust the
/// process thread limit — `std::thread::Scope::spawn` panics on spawn
/// failure, and oversubscription past this point only adds overhead anyway.
/// Results never depend on the resolved count, so clamping is safe.
pub fn resolve_threads(threads: usize) -> usize {
    let available = available_parallelism_cached();
    if threads == AUTO {
        available
    } else {
        threads.min((8 * available).max(64))
    }
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream index into a well-separated derived seed
/// (two SplitMix64 rounds; nearby `(seed, stream)` pairs map to statistically
/// independent values).
#[inline]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    splitmix(seed ^ splitmix(stream))
}

/// The RNG stream of task `index` under `seed`: a
/// [`crate::kernel::StreamRng`] whose state is derived from
/// [`mix_seed`]`(seed, index)`. This is the single derivation rule every
/// parallel sampler in the workspace uses — and it is cheap enough (four
/// SplitMix64 rounds, 16 bytes of state, no heap) to call once per walk
/// inside the hot loop.
#[inline]
pub fn stream_rng(seed: u64, index: u64) -> StreamRng {
    StreamRng::new(seed, index)
}

/// Runs `n` indexed sampling tasks and folds their results deterministically.
///
/// Task `i` receives its own RNG ([`stream_rng`]`(seed, i)`) and a mutable
/// chunk accumulator created by `new_acc`. Chunk accumulators are merged into
/// one result in chunk order via `merge`. The output is a pure function of
/// `(n, seed, task)` — `threads` only changes wall-clock time.
pub fn par_fold_indexed<A, N, T, M>(
    n: u64,
    seed: u64,
    threads: usize,
    new_acc: N,
    task: T,
    merge: M,
) -> A
where
    A: Send,
    N: Fn() -> A + Sync,
    T: Fn(u64, &mut StreamRng, &mut A) + Sync,
    M: FnMut(&mut A, A),
{
    par_fold_ranges(
        n,
        threads,
        new_acc,
        |range, acc| {
            for i in range {
                let mut rng = stream_rng(seed, i);
                task(i, &mut rng, acc);
            }
        },
        merge,
    )
}

/// Runs a task over chunked index ranges and folds the per-chunk accumulators
/// in chunk order — the range-based backbone of [`par_fold_indexed`].
///
/// `task` receives each [`CHUNK`]-sized range exactly once (boundaries depend
/// only on `n`) and must process its indices in order, deriving any
/// randomness from the index alone; the batched
/// [`WalkKernel`](crate::kernel::WalkKernel) drivers — fixed-length
/// (`batch_endpoints`/`batch_visits`), variable-length (`batch_until`, which
/// refills retired lanes from the range) and paired (`batch_pairs`) — do
/// exactly that while keeping several walks of the range in flight at once.
/// Chunk results are merged in chunk order, so the output is a pure function
/// of `(n, task)` for index-ordered sinks; commutative tallies are pure in
/// `(n, task)` regardless of sink order.
pub fn par_fold_ranges<A, N, T, M>(n: u64, threads: usize, new_acc: N, task: T, mut merge: M) -> A
where
    A: Send,
    N: Fn() -> A + Sync,
    T: Fn(std::ops::Range<u64>, &mut A) + Sync,
    M: FnMut(&mut A, A),
{
    let mut total = new_acc();
    if n == 0 {
        return total;
    }
    let chunks = n.div_ceil(CHUNK);
    let run_chunk = |c: u64| {
        let mut acc = new_acc();
        task(c * CHUNK..((c + 1) * CHUNK).min(n), &mut acc);
        acc
    };

    let workers = resolve_threads(threads).min(chunks as usize);
    if workers <= 1 {
        for c in 0..chunks {
            merge(&mut total, run_chunk(c));
        }
        return total;
    }

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<Option<A>>> = Mutex::new((0..chunks).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let acc = run_chunk(c);
                let mut slots = results.lock().unwrap_or_else(|e| e.into_inner());
                slots[c as usize] = Some(acc);
            });
        }
    });
    let slots = results.into_inner().unwrap_or_else(|e| e.into_inner());
    for acc in slots {
        merge(&mut total, acc.expect("scope joined every worker"));
    }
    total
}

/// [`par_fold_indexed`] for **commutative** accumulators (integer counts,
/// histograms, hit tallies): one accumulator per worker instead of one per
/// chunk, merged in whatever order the workers finish.
///
/// Per-task RNG streams are derived exactly as in [`par_fold_indexed`], so
/// the multiset of task results is the same; only the merge order varies.
/// The caller must guarantee `merge` is commutative and associative (true for
/// any field-wise integer addition), in which case the output is still
/// bit-identical at any thread count. Use this when the accumulator is large
/// (e.g. a per-node count vector) and a per-chunk copy would dominate the
/// sampling work; use [`par_fold_indexed`] for floating-point accumulation,
/// where merge order changes the rounding. For node/edge tallies prefer
/// [`crate::kernel::par_tally`], which additionally reuses epoch-stamped
/// sparse scratch buffers instead of zeroing dense vectors.
pub fn par_fold_commutative<A, N, T, M>(
    n: u64,
    seed: u64,
    threads: usize,
    new_acc: N,
    task: T,
    mut merge: M,
) -> A
where
    A: Send,
    N: Fn() -> A + Sync,
    T: Fn(u64, &mut StreamRng, &mut A) + Sync,
    M: FnMut(&mut A, A),
{
    let mut total = new_acc();
    if n == 0 {
        return total;
    }
    let chunks = n.div_ceil(CHUNK);
    let workers = resolve_threads(threads).min(chunks as usize);
    if workers <= 1 {
        for i in 0..n {
            let mut rng = stream_rng(seed, i);
            task(i, &mut rng, &mut total);
        }
        return total;
    }

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut acc = new_acc();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let end = ((c + 1) * CHUNK).min(n);
                    for i in c * CHUNK..end {
                        let mut rng = stream_rng(seed, i);
                        task(i, &mut rng, &mut acc);
                    }
                }
                results.lock().unwrap_or_else(|e| e.into_inner()).push(acc);
            });
        }
    });
    let accs = results.into_inner().unwrap_or_else(|e| e.into_inner());
    for acc in accs {
        merge(&mut total, acc);
    }
    total
}

/// Runs `n` indexed sampling tasks and collects their results in index order
/// (the `Vec`-producing counterpart of [`par_fold_indexed`]).
pub fn par_map_indexed<T, F>(n: u64, seed: u64, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut StreamRng) -> T + Sync,
{
    par_fold_indexed(
        n,
        seed,
        threads,
        Vec::new,
        |i, rng, acc: &mut Vec<T>| acc.push(task(i, rng)),
        |total, part| total.extend(part),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn noisy_sum(n: u64, seed: u64, threads: usize) -> f64 {
        par_fold_indexed(
            n,
            seed,
            threads,
            || 0.0f64,
            |i, rng, acc| {
                // A value whose accumulation order matters in floating point.
                *acc += rng.gen::<f64>() * (1.0 + i as f64).ln();
            },
            |total, part| *total += part,
        )
    }

    #[test]
    fn identical_results_at_any_thread_count() {
        for n in [0u64, 1, 7, CHUNK, CHUNK + 1, 5 * CHUNK + 13] {
            let base = noisy_sum(n, 42, 1);
            for threads in [2, 3, 8] {
                let parallel = noisy_sum(n, 42, threads);
                assert_eq!(
                    base.to_bits(),
                    parallel.to_bits(),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_results() {
        assert_ne!(noisy_sum(1000, 1, 4), noisy_sum(1000, 2, 4));
    }

    #[test]
    fn map_preserves_index_order() {
        let out = par_map_indexed(3 * CHUNK + 5, 7, 8, |i, _| i * 2);
        assert_eq!(out.len() as u64, 3 * CHUNK + 5);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 2);
        }
    }

    #[test]
    fn streams_are_independent_of_task_count() {
        // The stream of index i must not depend on n: running more tasks
        // leaves earlier tasks' randomness unchanged.
        let a = par_map_indexed(10, 5, 2, |_, rng| rng.gen::<u64>());
        let b = par_map_indexed(2000, 5, 2, |_, rng| rng.gen::<u64>());
        assert_eq!(a[..10], b[..10]);
    }

    #[test]
    fn fold_ranges_covers_every_index_once_in_chunk_order() {
        let out = par_fold_ranges(
            2 * CHUNK + 17,
            8,
            Vec::new,
            |range, acc: &mut Vec<u64>| acc.extend(range),
            |total, part| total.extend(part),
        );
        assert_eq!(out, (0..2 * CHUNK + 17).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_threads_auto_is_positive_and_wild_values_are_clamped() {
        assert!(resolve_threads(AUTO) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(resolve_threads(usize::MAX) <= (8 * cores).max(64));
    }
}
