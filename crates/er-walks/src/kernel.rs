//! Zero-allocation walk kernel: the single hot loop every estimator bottoms
//! out in.
//!
//! Profiling after the parallel layer landed showed the per-walk *constant
//! factor* dominating bulk sampling: each walk built a full `StdRng` (six
//! SplitMix64 rounds into 32 bytes of state), every step re-sliced the
//! adjacency list and went through the `gen_range` trait machinery, and every
//! bulk tally zeroed an O(n) dense vector even though a length-ℓ walk touches
//! at most ℓ nodes. This module removes all three costs:
//!
//! * [`StreamRng`] — a 16-byte xoroshiro128++ stream initialised with four
//!   SplitMix64 rounds (no heap, no seed-array expansion). Stream `i` under a
//!   seed is a pure function of `(seed, i)`, so the parallel layer keeps its
//!   bit-identical-at-any-thread-count guarantee.
//! * [`WalkKernel`] — walk stepping directly over the borrowed CSR arrays:
//!   the row offset and degree are loaded once per step and the neighbour
//!   index comes from Lemire's widening-multiply bounded reduction
//!   (one 64×64→128 multiply, no division, no rejection loop). The batched
//!   drivers ([`WalkKernel::batch_endpoints`], [`WalkKernel::batch_visits`])
//!   additionally run [`LANES`] independent walks in lockstep so the
//!   dependent cache-miss chains of concurrent walks overlap instead of
//!   serialising — random walking is latency-bound, not compute-bound.
//!   Each lane can also **prefetch ahead**: the moment a lane resolves its
//!   next node, its neighbour row is software-prefetched (x86_64; no-op
//!   elsewhere) so the load the lane will issue a full lockstep round later
//!   starts now. Prefetch never changes a value and is opt-in via
//!   [`WalkKernel::with_prefetch`] — measured, it only pays when lanes are
//!   scarce (the 3-lane Wilson driver), and costs at a full lane block.
//! * [`WalkScratch`] / [`ScratchPool`] — reusable epoch-stamped sparse
//!   tallies: bumping a node count is O(1), "resetting" is an epoch
//!   increment, and merging walks the touched-node list instead of a full
//!   O(n) vector. Workers borrow scratches from a shared pool, so steady-state
//!   bulk operations allocate nothing.
//!
//! [`par_tally`] and [`par_tally_sparse`] fan tally workloads out over chunked
//! index ranges exactly like [`crate::par`], with the same determinism
//! argument: per-walk RNG streams depend only on `(seed, walk index)`, chunk
//! boundaries depend only on the task count, and the merge is integer
//! addition, which is commutative and associative.

use crate::par;
use er_graph::{Graph, NodeId};
use rand::{splitmix64, RngCore};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The default (middle) lockstep lane width, [`LaneWidth::L16`] as a plain
/// constant. Kept for callers that size work blocks around the lane count;
/// the kernel itself now picks its width per graph (see [`LaneWidth::auto`])
/// and every driver produces identical results at any width.
pub const LANES: usize = 16;

// The lockstep drivers track live lanes in a u64 bitmask; a wider lane count
// would silently truncate it, so fail the build instead if anyone retunes
// past 64.
const _: () = assert!(MAX_LANES <= 64, "lane masks are u64");

/// The widest lane configuration the dispatcher can select.
const MAX_LANES: usize = 32;

/// Bitmask with the low `lanes` bits set.
#[inline]
const fn lane_mask(lanes: usize) -> u64 {
    if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Lockstep lane width of a [`WalkKernel`]: how many independent walks each
/// driver keeps in flight at once.
///
/// More lanes overlap more of the dependent cache-miss chain — which pays
/// off exactly when the CSR arrays miss cache. A cache-resident graph gains
/// nothing from extra in-flight loads and instead pays for the larger lane
/// state, so the width is chosen per graph by [`LaneWidth::auto`] (a bench
/// sweep lives in the `walk_kernel` bin). Every driver is **results-neutral
/// in the width**: per-walk draws come from per-walk streams and per-walk
/// results are reported either in index order or into commutative
/// accumulators, so retuning can never change a value — pinned by tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneWidth {
    /// 8 lanes — cache-resident graphs, where latency hiding buys nothing.
    L8,
    /// 16 lanes — the default middle ground.
    L16,
    /// 32 lanes — large, latency-bound graphs.
    L32,
}

impl LaneWidth {
    /// The number of lanes this width runs.
    pub const fn lanes(self) -> usize {
        match self {
            LaneWidth::L8 => 8,
            LaneWidth::L16 => 16,
            LaneWidth::L32 => 32,
        }
    }

    /// Picks a lane width from the graph's CSR footprint: graphs whose
    /// offset+neighbour arrays fit comfortably in the private caches walk
    /// with 8 lanes, graphs past the last-level cache with 32, the middle
    /// band with 16. Thresholds come from the `walk_kernel` bench sweep
    /// (`--quick` prints per-width walks/sec next to the heuristic's pick).
    pub fn auto(num_nodes: usize, num_edges: usize) -> LaneWidth {
        let csr_bytes = (num_nodes + 1) * std::mem::size_of::<usize>()
            + 2 * num_edges * std::mem::size_of::<NodeId>();
        if csr_bytes <= 512 << 10 {
            LaneWidth::L8
        } else if csr_bytes <= 16 << 20 {
            LaneWidth::L16
        } else {
            LaneWidth::L32
        }
    }
}

/// A 16-byte xoroshiro128++ generator, the RNG stream of one walk.
///
/// Construction is four SplitMix64 rounds from `(seed, stream)` — cheap
/// enough to build one per walk inside the hot loop. Implements
/// [`rand::RngCore`], so all higher-level sampling (`gen`, `gen_range`,
/// `SliceRandom`) works on it unchanged.
#[derive(Clone, Debug)]
pub struct StreamRng {
    s0: u64,
    s1: u64,
}

impl StreamRng {
    /// The RNG stream of task `stream` under `seed`; the single derivation
    /// rule every parallel sampler in the workspace uses.
    #[inline]
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut sm = par::mix_seed(seed, stream);
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        if s0 | s1 == 0 {
            // xoroshiro requires a non-zero state; SplitMix64 reaches the
            // all-zero pair with probability 2⁻¹²⁸, but stay total anyway.
            return StreamRng {
                s0: 0x9e37_79b9_7f4a_7c15,
                s1: 0,
            };
        }
        StreamRng { s0, s1 }
    }
}

impl RngCore for StreamRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s0 = self.s0;
        let mut s1 = self.s1;
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s1 = s1.rotate_left(28);
        result
    }
}

/// Maps a uniform 64-bit draw onto `[0, n)` by widening multiply (Lemire's
/// bounded reduction without the rejection step; the bias of ≤ n/2⁶⁴ is far
/// below statistical relevance for graph sampling, and matches what the
/// `rand` shim's `gen_range` does).
#[inline]
fn bounded(draw: u64, n: u64) -> u64 {
    ((draw as u128 * n as u128) >> 64) as u64
}

/// Borrowed view of a graph's CSR arrays with allocation-free walk stepping.
///
/// `Copy`, so closures can capture it by value and the optimiser sees two
/// loop-invariant slices instead of a `&Graph` indirection per step.
#[derive(Clone, Copy, Debug)]
pub struct WalkKernel<'g> {
    offsets: &'g [usize],
    neighbors: &'g [NodeId],
    lanes: LaneWidth,
    prefetch: bool,
}

impl<'g> WalkKernel<'g> {
    /// Creates a kernel over `graph`'s CSR arrays, with the lockstep lane
    /// width chosen per graph by [`LaneWidth::auto`] and prefetch-ahead off
    /// (see [`WalkKernel::with_prefetch`] for when to opt in).
    #[inline]
    pub fn new(graph: &'g Graph) -> Self {
        let (offsets, neighbors) = graph.csr();
        WalkKernel {
            offsets,
            neighbors,
            lanes: LaneWidth::auto(graph.num_nodes(), graph.num_edges()),
            prefetch: false,
        }
    }

    /// Overrides the lockstep lane width (results are identical at any
    /// width; only throughput changes).
    #[must_use]
    pub fn with_lanes(mut self, lanes: LaneWidth) -> Self {
        self.lanes = lanes;
        self
    }

    /// The lockstep lane width this kernel runs.
    pub fn lanes(&self) -> LaneWidth {
        self.lanes
    }

    /// Enables or disables prefetch-ahead (off by default): after a lane
    /// resolves its next node, the lockstep drivers issue a software prefetch
    /// of that node's neighbour row before servicing the next lane, so the
    /// row is (partly) in cache by the time the lane steps again a full
    /// round later. Prefetch only touches the cache, never a value —
    /// results are bit-identical either way (pinned by tests).
    ///
    /// The `walk_kernel` bench's on/off sweep found prefetch pays only when
    /// lanes are scarce: the 3-lane Wilson driver gains ~7% (it opts in),
    /// while at a full 16-lane block the out-of-order window already keeps
    /// enough rows in flight and the extra prefetch traffic *costs* ~16% —
    /// hence off by default for the wide drivers.
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Whether prefetch-ahead is enabled.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch
    }

    /// Issues a software prefetch of `v`'s CSR neighbour row (no-op when
    /// disabled or off x86_64). The `offsets[v]` load this needs feeds only
    /// the prefetch address, so out-of-order execution overlaps it with the
    /// surrounding lanes' work instead of stalling on it.
    #[inline]
    pub(crate) fn prefetch_row(&self, v: NodeId) {
        if !self.prefetch {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let lo = self.offsets[v];
            if let Some(first) = self.neighbors.get(lo) {
                // SAFETY: `first` comes from an in-bounds slice element;
                // `_mm_prefetch` reads nothing and writes nothing — its only
                // effect is a cache-line fetch hint, harmless for any address.
                #[allow(unsafe_code)]
                unsafe {
                    std::arch::x86_64::_mm_prefetch(
                        (first as *const NodeId).cast::<i8>(),
                        std::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = v;
    }

    /// Number of nodes in the underlying CSR (the offsets array has one
    /// entry per node plus a sentinel).
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// One step of the simple random walk from `v`: a uniformly random
    /// neighbour, or `None` if `v` is isolated. Degree and row offset are
    /// loaded once; the neighbour index is a single widening multiply.
    #[inline]
    pub fn step<R: RngCore + ?Sized>(&self, v: NodeId, rng: &mut R) -> Option<NodeId> {
        let lo = self.offsets[v];
        let degree = self.offsets[v + 1] - lo;
        if degree == 0 {
            return None;
        }
        Some(self.neighbors[lo + bounded(rng.next_u64(), degree as u64) as usize])
    }

    /// Runs one length-`len` walk from `start`; returns the endpoint and the
    /// steps actually taken (fewer than `len` only if the walk reaches an
    /// isolated node).
    #[inline]
    pub fn endpoint<R: RngCore + ?Sized>(
        &self,
        start: NodeId,
        len: usize,
        rng: &mut R,
    ) -> (NodeId, u64) {
        let mut current = start;
        let mut steps = 0;
        for _ in 0..len {
            match self.step(current, rng) {
                Some(next) => {
                    current = next;
                    steps += 1;
                }
                None => break,
            }
        }
        (current, steps)
    }

    /// Runs one length-`len` walk from `start`, calling `visit` on each of
    /// the visited nodes (steps 1..=len; the start node is not visited).
    /// Returns the steps actually taken.
    #[inline]
    pub fn for_each_visit<R: RngCore + ?Sized>(
        &self,
        start: NodeId,
        len: usize,
        rng: &mut R,
        mut visit: impl FnMut(NodeId),
    ) -> u64 {
        let mut current = start;
        let mut steps = 0;
        for _ in 0..len {
            match self.step(current, rng) {
                Some(next) => {
                    current = next;
                    steps += 1;
                    visit(current);
                }
                None => break,
            }
        }
        steps
    }

    /// Runs the walks with indices `range` (RNG stream `(seed, i)` for walk
    /// `i`), a lane block at a time in lockstep, and reports each walk's
    /// endpoint and step count to `sink` **in index order**.
    ///
    /// Lockstep execution only reorders the memory accesses of independent
    /// walks, never the draws within one walk, so every walk's result is
    /// identical to running [`WalkKernel::endpoint`] on its own stream —
    /// at any [`LaneWidth`].
    pub fn batch_endpoints(
        &self,
        start: NodeId,
        len: usize,
        seed: u64,
        range: Range<u64>,
        sink: &mut impl FnMut(u64, NodeId, u64),
    ) {
        match self.lanes {
            LaneWidth::L8 => self.lockstep::<8>(start, len, seed, range, &mut |_| {}, sink),
            LaneWidth::L16 => self.lockstep::<16>(start, len, seed, range, &mut |_| {}, sink),
            LaneWidth::L32 => self.lockstep::<32>(start, len, seed, range, &mut |_| {}, sink),
        }
    }

    /// Runs the walks with indices `range`, a lane block at a time in
    /// lockstep, calling `visit` on every visited node of every walk and
    /// returning the total steps taken.
    ///
    /// The order in which different walks' visits interleave depends on the
    /// lane layout, so `visit` must feed a commutative accumulator (node
    /// counts); each individual walk still visits its nodes in walk order.
    pub fn batch_visits(
        &self,
        start: NodeId,
        len: usize,
        seed: u64,
        range: Range<u64>,
        visit: &mut impl FnMut(NodeId),
    ) -> u64 {
        let mut total_steps = 0u64;
        let mut finish = |_: u64, _: NodeId, steps: u64| total_steps += steps;
        match self.lanes {
            LaneWidth::L8 => self.lockstep::<8>(start, len, seed, range, visit, &mut finish),
            LaneWidth::L16 => self.lockstep::<16>(start, len, seed, range, visit, &mut finish),
            LaneWidth::L32 => self.lockstep::<32>(start, len, seed, range, visit, &mut finish),
        }
        total_steps
    }

    /// Runs the **variable-length** walks with indices `range` in lockstep
    /// lanes, each walk stepping until `judge` returns a verdict or
    /// `max_steps` is reached; retired lanes are refilled from the pending
    /// range immediately, so the memory-level parallelism never drains while
    /// work remains — unlike the fixed-length drivers, whose lanes all
    /// retire together.
    ///
    /// Each step draws one `u64` from the walk's own stream (`(seed, i)` for
    /// walk `i`) and moves to a uniformly random neighbour `next`; `judge`
    /// then sees `(previous, next, steps_taken, &mut flags)` — `flags` is a
    /// per-walk scratch word (zeroed per walk) for predicates that need
    /// state, like "returned to `s` *after* visiting `t`". A `Some` verdict
    /// retires the walk; exhausting `max_steps` (or stranding on an isolated
    /// node) retires it with `None`. Every walk's draw sequence is identical
    /// to stepping it alone on its own stream, so porting a sequential
    /// walk-until loop onto this driver preserves its values bit for bit.
    ///
    /// `sink` receives `(index, verdict, steps)` once per walk in **retire
    /// order**, which depends on the lane width and refill schedule (but not
    /// on thread count — it is a pure function of `(seed, range, width)`).
    /// Feed a commutative accumulator (outcome counts, step totals) to stay
    /// results-neutral in the width; the bulk escape/first-hit tallies do.
    pub fn batch_until<V, J>(
        &self,
        start: NodeId,
        max_steps: usize,
        seed: u64,
        range: Range<u64>,
        judge: &J,
        sink: &mut impl FnMut(u64, Option<V>, u64),
    ) where
        J: Fn(NodeId, NodeId, u64, &mut u64) -> Option<V>,
    {
        match self.lanes {
            LaneWidth::L8 => {
                self.lockstep_until::<8, V, J>(start, max_steps, seed, range, judge, sink)
            }
            LaneWidth::L16 => {
                self.lockstep_until::<16, V, J>(start, max_steps, seed, range, judge, sink)
            }
            LaneWidth::L32 => {
                self.lockstep_until::<32, V, J>(start, max_steps, seed, range, judge, sink)
            }
        }
    }

    /// Runs the **walk pairs** with indices `range` in lockstep lanes: pair
    /// `i` draws from stream `(seed, i)` and runs a length-`len` walk from
    /// `s` followed by a length-`len` walk from `t` **on the same stream, in
    /// that order** — exactly the draw schedule of stepping the pair alone —
    /// while the s-walks (then t-walks) of a whole lane block advance
    /// together so their cache misses overlap.
    ///
    /// `visit_s` / `visit_t` fold each visited node into the pair's private
    /// accumulator in walk order (s-walk first), and `finish` receives
    /// `(index, accumulator, steps)` **in index order**, so floating-point
    /// accumulation per pair and across pairs is bit-identical to the
    /// sequential loop at any [`LaneWidth`]. This is AMC's walk-pair driver.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_pairs<A, VS, VT>(
        &self,
        s: NodeId,
        t: NodeId,
        len: usize,
        seed: u64,
        range: Range<u64>,
        visit_s: &VS,
        visit_t: &VT,
        finish: &mut impl FnMut(u64, A, u64),
    ) where
        A: Default + Copy,
        VS: Fn(NodeId, &mut A),
        VT: Fn(NodeId, &mut A),
    {
        match self.lanes {
            LaneWidth::L8 => self
                .lockstep_pairs::<8, A, VS, VT>(s, t, len, seed, range, visit_s, visit_t, finish),
            LaneWidth::L16 => self
                .lockstep_pairs::<16, A, VS, VT>(s, t, len, seed, range, visit_s, visit_t, finish),
            LaneWidth::L32 => self
                .lockstep_pairs::<32, A, VS, VT>(s, t, len, seed, range, visit_s, visit_t, finish),
        }
    }

    /// The fixed-length lockstep driver behind [`WalkKernel::batch_endpoints`]
    /// and [`WalkKernel::batch_visits`]: full blocks of `L` walks advance
    /// together (a dead lane — one that hit an isolated node — is dropped
    /// from the `alive` mask), the remainder runs sequentially. `on_step`
    /// fires for every visited node of every walk (lane-interleaved across
    /// walks, walk-ordered within one); `finish` fires once per walk with
    /// `(index, endpoint, steps)` **in index order**. Unused callbacks
    /// monomorphise away.
    #[inline]
    fn lockstep<const L: usize>(
        &self,
        start: NodeId,
        len: usize,
        seed: u64,
        range: Range<u64>,
        on_step: &mut impl FnMut(NodeId),
        finish: &mut impl FnMut(u64, NodeId, u64),
    ) {
        let mut i = range.start;
        while i + L as u64 <= range.end {
            let mut rngs: [StreamRng; L] =
                std::array::from_fn(|lane| StreamRng::new(seed, i + lane as u64));
            let mut current = [start; L];
            let mut steps = [0u64; L];
            let mut alive: u64 = if len == 0 { 0 } else { lane_mask(L) };
            for _ in 0..len {
                if alive == 0 {
                    break;
                }
                for lane in 0..L {
                    if alive & (1 << lane) != 0 {
                        match self.step(current[lane], &mut rngs[lane]) {
                            Some(next) => {
                                self.prefetch_row(next);
                                current[lane] = next;
                                steps[lane] += 1;
                                on_step(next);
                            }
                            None => alive &= !(1 << lane),
                        }
                    }
                }
            }
            for lane in 0..L {
                finish(i + lane as u64, current[lane], steps[lane]);
            }
            i += L as u64;
        }
        for j in i..range.end {
            let mut rng = StreamRng::new(seed, j);
            let mut current = start;
            let mut steps = 0;
            while steps < len as u64 {
                match self.step(current, &mut rng) {
                    Some(next) => {
                        current = next;
                        steps += 1;
                        on_step(next);
                    }
                    None => break,
                }
            }
            finish(j, current, steps);
        }
    }

    /// The variable-length lane state machine behind
    /// [`WalkKernel::batch_until`]: every lane carries its own walk index,
    /// RNG stream, step count and flag word; a retired lane (verdict, step
    /// cap, or isolated node) is refilled from the pending range in the same
    /// lockstep round, so all `L` memory accesses stay in flight until the
    /// work runs out.
    #[inline]
    fn lockstep_until<const L: usize, V, J>(
        &self,
        start: NodeId,
        max_steps: usize,
        seed: u64,
        range: Range<u64>,
        judge: &J,
        sink: &mut impl FnMut(u64, Option<V>, u64),
    ) where
        J: Fn(NodeId, NodeId, u64, &mut u64) -> Option<V>,
    {
        if max_steps == 0 {
            // Every walk truncates before its first step.
            for i in range {
                sink(i, None, 0);
            }
            return;
        }
        let mut next_index = range.start;
        let mut rngs: [StreamRng; L] = std::array::from_fn(|_| StreamRng::new(0, 0));
        let mut current = [start; L];
        let mut steps = [0u64; L];
        let mut index = [0u64; L];
        let mut flags = [0u64; L];
        let mut alive: u64 = 0;
        for lane in 0..L {
            if next_index < range.end {
                rngs[lane] = StreamRng::new(seed, next_index);
                index[lane] = next_index;
                next_index += 1;
                alive |= 1 << lane;
            }
        }
        while alive != 0 {
            for lane in 0..L {
                if alive & (1 << lane) == 0 {
                    continue;
                }
                // `Some(verdict)` retires the lane this round.
                let retired = match self.step(current[lane], &mut rngs[lane]) {
                    Some(next) => {
                        self.prefetch_row(next);
                        steps[lane] += 1;
                        match judge(current[lane], next, steps[lane], &mut flags[lane]) {
                            Some(v) => Some(Some(v)),
                            None => {
                                current[lane] = next;
                                if steps[lane] as usize >= max_steps {
                                    Some(None)
                                } else {
                                    None
                                }
                            }
                        }
                    }
                    None => Some(None),
                };
                if let Some(verdict) = retired {
                    sink(index[lane], verdict, steps[lane]);
                    if next_index < range.end {
                        rngs[lane] = StreamRng::new(seed, next_index);
                        index[lane] = next_index;
                        current[lane] = start;
                        steps[lane] = 0;
                        flags[lane] = 0;
                        next_index += 1;
                    } else {
                        alive &= !(1 << lane);
                    }
                }
            }
        }
    }

    /// The paired lockstep driver behind [`WalkKernel::batch_pairs`]: a
    /// (possibly partial) block of `L` pairs advances its s-walks together,
    /// then its t-walks together, each pair continuing on its own stream, and
    /// reports per-pair accumulators in index order.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn lockstep_pairs<const L: usize, A, VS, VT>(
        &self,
        s: NodeId,
        t: NodeId,
        len: usize,
        seed: u64,
        range: Range<u64>,
        visit_s: &VS,
        visit_t: &VT,
        finish: &mut impl FnMut(u64, A, u64),
    ) where
        A: Default + Copy,
        VS: Fn(NodeId, &mut A),
        VT: Fn(NodeId, &mut A),
    {
        let mut i = range.start;
        while i < range.end {
            let block = ((range.end - i).min(L as u64)) as usize;
            // Streams beyond the block are never drawn from; building them
            // unconditionally keeps the array initialisation branch-free.
            let mut rngs: [StreamRng; L] =
                std::array::from_fn(|lane| StreamRng::new(seed, i + lane as u64));
            let mut acc = [A::default(); L];
            let mut steps = [0u64; L];
            // s-phase, then t-phase, each pair continuing on its own stream.
            self.pair_phase::<L, A>(s, len, block, &mut rngs, &mut acc, &mut steps, visit_s);
            self.pair_phase::<L, A>(t, len, block, &mut rngs, &mut acc, &mut steps, visit_t);
            for lane in 0..block {
                finish(i + lane as u64, acc[lane], steps[lane]);
            }
            i += block as u64;
        }
    }

    /// One phase of [`WalkKernel::lockstep_pairs`]: the first `block` lanes
    /// walk `len` steps from `start` in lockstep, each continuing on its own
    /// stream and folding visits into its own accumulator; a lane hitting an
    /// isolated node goes dead for the rest of the phase.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn pair_phase<const L: usize, A>(
        &self,
        start: NodeId,
        len: usize,
        block: usize,
        rngs: &mut [StreamRng; L],
        acc: &mut [A; L],
        steps: &mut [u64; L],
        visit: &impl Fn(NodeId, &mut A),
    ) {
        let mut current = [start; L];
        let mut alive = if len == 0 { 0 } else { lane_mask(block) };
        for _ in 0..len {
            if alive == 0 {
                break;
            }
            for lane in 0..block {
                if alive & (1 << lane) != 0 {
                    match self.step(current[lane], &mut rngs[lane]) {
                        Some(next) => {
                            self.prefetch_row(next);
                            current[lane] = next;
                            steps[lane] += 1;
                            visit(next, &mut acc[lane]);
                        }
                        None => alive &= !(1 << lane),
                    }
                }
            }
        }
    }
}

/// A reusable epoch-stamped sparse tally over ids `0..n`.
///
/// `counts[v]` is valid only while `stamps[v]` equals the current epoch, so
/// [`WalkScratch::begin`] "clears" the whole tally by incrementing one
/// counter — no O(n) zeroing. The touched-id list makes merging O(ids
/// actually hit) instead of O(n). When the 32-bit epoch wraps, the stamps are
/// bulk-reset once so a stale stamp can never collide with a future epoch.
#[derive(Clone, Debug)]
pub struct WalkScratch {
    counts: Vec<u64>,
    stamps: Vec<u32>,
    touched: Vec<NodeId>,
    epoch: u32,
    steps: u64,
}

impl WalkScratch {
    /// Creates a scratch over ids `0..n`. This is the only O(n) moment in the
    /// scratch's lifetime; everything afterwards is proportional to the work
    /// actually done.
    pub fn new(n: usize) -> Self {
        WalkScratch {
            counts: vec![0; n],
            stamps: vec![0; n],
            touched: Vec::new(),
            epoch: 0,
            steps: 0,
        }
    }

    /// Number of distinct ids the scratch can tally.
    pub fn id_space(&self) -> usize {
        self.counts.len()
    }

    /// Starts a fresh tally: all counts read as zero, the touched list and
    /// step counter are empty. O(1) except once every 2³²−1 calls, when the
    /// epoch wraps and the stamps are bulk-reset.
    pub fn begin(&mut self) {
        self.touched.clear();
        self.steps = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Increments the tally of `id`.
    #[inline]
    pub fn bump(&mut self, id: NodeId) {
        if self.stamps[id] == self.epoch {
            self.counts[id] += 1;
        } else {
            self.stamps[id] = self.epoch;
            self.counts[id] = 1;
            self.touched.push(id);
        }
    }

    /// Adds to the scratch's step counter (bulk walk cost accounting).
    #[inline]
    pub fn add_steps(&mut self, steps: u64) {
        self.steps += steps;
    }

    /// Steps recorded since [`WalkScratch::begin`].
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current tally of `id` (zero unless bumped since the last `begin`).
    pub fn count(&self, id: NodeId) -> u64 {
        if self.stamps[id] == self.epoch {
            self.counts[id]
        } else {
            0
        }
    }

    /// The ids bumped since the last `begin`, in first-touch order.
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Adds the tally into a dense vector; O(touched ids).
    pub fn merge_into_dense(&self, dense: &mut [u64]) {
        for &id in &self.touched {
            dense[id] += self.counts[id];
        }
    }

    /// The tally as `(id, count)` pairs sorted by id; O(touched · log touched).
    pub fn to_sorted_pairs(&self) -> Vec<(NodeId, u64)> {
        let mut pairs: Vec<(NodeId, u64)> = self
            .touched
            .iter()
            .map(|&id| (id, self.counts[id]))
            .collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        pairs
    }

    /// Test hook: jump to an arbitrary epoch so the wraparound path can be
    /// exercised without 2³² `begin` calls.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// A shared pool of [`WalkScratch`] instances, one per concurrently active
/// worker, so repeated bulk operations reuse their tally buffers instead of
/// reallocating them.
#[derive(Debug)]
pub struct ScratchPool {
    id_space: usize,
    slots: Mutex<Vec<WalkScratch>>,
}

impl ScratchPool {
    /// Creates an empty pool of scratches over ids `0..n`; scratches are
    /// created lazily on first use.
    pub fn new(n: usize) -> Self {
        ScratchPool {
            id_space: n,
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Number of distinct ids the pool's scratches tally.
    pub fn id_space(&self) -> usize {
        self.id_space
    }

    /// Number of idle scratches currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Borrows a scratch (reusing an idle one if available). The caller must
    /// call [`WalkScratch::begin`] before tallying and should return the
    /// scratch with [`ScratchPool::put`] when done.
    pub fn take(&self) -> WalkScratch {
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_else(|| WalkScratch::new(self.id_space))
    }

    /// Returns a scratch to the pool for reuse.
    pub fn put(&self, scratch: WalkScratch) {
        debug_assert_eq!(scratch.id_space(), self.id_space);
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
    }
}

/// Runs a tally workload over `n` indexed tasks and returns the dense count
/// vector plus the total steps recorded.
///
/// `task` receives a contiguous index range (a [`par::CHUNK`]-sized chunk
/// whose boundaries depend only on `n`) and a scratch that is already
/// `begin`-ed; it tallies with [`WalkScratch::bump`] and accounts steps with
/// [`WalkScratch::add_steps`]. Per-walk determinism is the task's
/// responsibility: derive walk `i`'s randomness from its index (the batched
/// [`WalkKernel`] drivers do exactly that), and the result is bit-identical
/// at any thread count because integer tally merging is commutative and
/// associative.
pub fn par_tally<T>(n: u64, threads: usize, pool: &ScratchPool, task: T) -> (Vec<u64>, u64)
where
    T: Fn(Range<u64>, &mut WalkScratch) + Sync,
{
    let dense = vec![0u64; pool.id_space()];
    par_tally_into(n, threads, pool, task, dense, |scratch, dense| {
        scratch.merge_into_dense(dense)
    })
}

/// [`par_tally`] returning the counts as `(id, count)` pairs sorted by id —
/// for workloads whose tallies are sparse relative to the id space (TPC's
/// endpoint multisets) and whose consumers want ordered iteration.
pub fn par_tally_sparse<T>(
    n: u64,
    threads: usize,
    pool: &ScratchPool,
    task: T,
) -> (Vec<(NodeId, u64)>, u64)
where
    T: Fn(Range<u64>, &mut WalkScratch) + Sync,
{
    let map = std::collections::BTreeMap::new();
    let (map, steps) = par_tally_into(n, threads, pool, task, map, |scratch, map| {
        for &id in scratch.touched() {
            *map.entry(id).or_insert(0) += scratch.count(id);
        }
    });
    (map.into_iter().collect(), steps)
}

/// The shared worker scaffolding of [`par_tally`] / [`par_tally_sparse`]:
/// chunked atomic dispatch over pooled scratches, with `drain` folding each
/// worker's finished scratch into the accumulator (under the merge lock in
/// the parallel case). `drain` must be commutative across scratches — integer
/// tally addition is — so the accumulator is thread-count invariant.
fn par_tally_into<A, T, D>(
    n: u64,
    threads: usize,
    pool: &ScratchPool,
    task: T,
    mut acc: A,
    drain: D,
) -> (A, u64)
where
    A: Send,
    T: Fn(Range<u64>, &mut WalkScratch) + Sync,
    D: Fn(&WalkScratch, &mut A) + Sync,
{
    if n == 0 {
        return (acc, 0);
    }
    let chunks = n.div_ceil(par::CHUNK);
    let workers = par::resolve_threads(threads).min(chunks as usize);
    if workers <= 1 {
        let mut scratch = pool.take();
        scratch.begin();
        task(0..n, &mut scratch);
        drain(&scratch, &mut acc);
        let steps = scratch.steps();
        pool.put(scratch);
        return (acc, steps);
    }

    let next = AtomicU64::new(0);
    let merged = Mutex::new((acc, 0u64));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = pool.take();
                scratch.begin();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    task(c * par::CHUNK..((c + 1) * par::CHUNK).min(n), &mut scratch);
                }
                let mut guard = merged.lock().unwrap_or_else(|e| e.into_inner());
                drain(&scratch, &mut guard.0);
                guard.1 += scratch.steps();
                drop(guard);
                pool.put(scratch);
            });
        }
    });
    merged.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use rand::Rng;

    #[test]
    fn stream_rng_is_deterministic_and_stream_separated() {
        let draws = |seed, stream| {
            let mut rng = StreamRng::new(seed, stream);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7, 3), draws(7, 3));
        assert_ne!(draws(7, 3), draws(7, 4));
        assert_ne!(draws(7, 3), draws(8, 3));
        // Rng trait methods work through the RngCore impl.
        let mut rng = StreamRng::new(1, 0);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        assert!(rng.gen_range(0..10usize) < 10);
    }

    #[test]
    fn kernel_step_matches_graph_random_neighbor_draws() {
        // The kernel's widening-multiply pick consumes one u64 per step and
        // selects the same neighbour as Graph::random_neighbor on the same
        // stream (both use the Lemire reduction over the sorted row).
        let g = generators::social_network_like(300, 9.0, 5).unwrap();
        let kernel = WalkKernel::new(&g);
        let mut a = StreamRng::new(11, 0);
        let mut b = StreamRng::new(11, 0);
        let mut u = 0;
        let mut v = 0;
        for _ in 0..200 {
            u = kernel.step(u, &mut a).unwrap();
            v = g.random_neighbor(v, &mut b).unwrap();
            assert_eq!(u, v);
        }
    }

    #[test]
    fn kernel_handles_isolated_nodes_and_zero_length() {
        let g = er_graph::GraphBuilder::new(3)
            .add_edge(0, 1)
            .build()
            .unwrap();
        let kernel = WalkKernel::new(&g);
        let mut rng = StreamRng::new(0, 0);
        assert_eq!(kernel.step(2, &mut rng), None);
        assert_eq!(kernel.endpoint(2, 5, &mut rng), (2, 0));
        assert_eq!(kernel.endpoint(0, 0, &mut rng), (0, 0));
        let mut visited = Vec::new();
        let steps = kernel.for_each_visit(0, 3, &mut rng, |v| visited.push(v));
        assert_eq!(steps, 3);
        assert_eq!(visited.len(), 3);
    }

    #[test]
    fn batched_endpoints_match_sequential_per_stream_walks() {
        // Lockstep lanes must not change any individual walk: endpoints and
        // steps must equal a per-walk sequential run on the same streams, and
        // the sink must observe them in index order.
        let g = generators::barabasi_albert(500, 4, 2).unwrap();
        let kernel = WalkKernel::new(&g);
        let (seed, len) = (0xabcd, 13);
        for range in [0..(3 * LANES as u64 + 5), 7..7, 2..LANES as u64 - 1] {
            let mut batched = Vec::new();
            kernel.batch_endpoints(0, len, seed, range.clone(), &mut |i, end, steps| {
                batched.push((i, end, steps));
            });
            let sequential: Vec<(u64, NodeId, u64)> = range
                .clone()
                .map(|i| {
                    let mut rng = StreamRng::new(seed, i);
                    let (end, steps) = kernel.endpoint(0, len, &mut rng);
                    (i, end, steps)
                })
                .collect();
            assert_eq!(batched, sequential, "range {range:?}");
        }
    }

    #[test]
    fn batched_visits_match_sequential_multiset_and_steps() {
        let g = generators::social_network_like(200, 7.0, 8).unwrap();
        let kernel = WalkKernel::new(&g);
        let (seed, len, n_walks) = (99, 9, 2 * LANES as u64 + 3);
        let mut batched = vec![0u64; g.num_nodes()];
        let steps_b = kernel.batch_visits(4, len, seed, 0..n_walks, &mut |v| batched[v] += 1);
        let mut sequential = vec![0u64; g.num_nodes()];
        let mut steps_s = 0;
        for i in 0..n_walks {
            let mut rng = StreamRng::new(seed, i);
            steps_s += kernel.for_each_visit(4, len, &mut rng, |v| sequential[v] += 1);
        }
        assert_eq!(batched, sequential);
        assert_eq!(steps_b, steps_s);
    }

    #[test]
    fn lane_width_auto_tracks_csr_footprint() {
        // Tiny graphs stay cache-resident -> fewest lanes; huge CSRs are
        // latency-bound -> most lanes.
        assert_eq!(LaneWidth::auto(100, 500), LaneWidth::L8);
        assert_eq!(LaneWidth::auto(100_000, 400_000), LaneWidth::L16);
        assert_eq!(LaneWidth::auto(2_000_000, 16_000_000), LaneWidth::L32);
        assert_eq!(LaneWidth::L8.lanes(), 8);
        assert_eq!(LaneWidth::L16.lanes(), 16);
        assert_eq!(LaneWidth::L32.lanes(), 32);
    }

    #[test]
    fn fixed_length_drivers_are_lane_width_invariant() {
        let g = generators::social_network_like(250, 8.0, 5).unwrap();
        let runs = |width: LaneWidth| {
            let kernel = WalkKernel::new(&g).with_lanes(width);
            let mut ends = Vec::new();
            kernel.batch_endpoints(0, 11, 77, 0..101, &mut |i, end, steps| {
                ends.push((i, end, steps));
            });
            let mut visits = vec![0u64; g.num_nodes()];
            let steps = kernel.batch_visits(3, 9, 78, 0..67, &mut |v| visits[v] += 1);
            (ends, visits, steps)
        };
        let base = runs(LaneWidth::L8);
        assert_eq!(base, runs(LaneWidth::L16));
        assert_eq!(base, runs(LaneWidth::L32));
    }

    #[test]
    fn prefetch_toggle_is_results_neutral_in_every_driver() {
        // Prefetch only warms the cache; all four lockstep drivers must
        // produce identical bits with it on or off.
        let g = generators::social_network_like(250, 8.0, 5).unwrap();
        let weight = |u: NodeId| (u as f64 + 1.0).ln();
        let run = |prefetch: bool| {
            let kernel = WalkKernel::new(&g).with_prefetch(prefetch);
            assert_eq!(kernel.prefetch_enabled(), prefetch);
            let mut ends = Vec::new();
            kernel.batch_endpoints(0, 11, 77, 0..101, &mut |i, e, s| ends.push((i, e, s)));
            let mut visits = vec![0u64; g.num_nodes()];
            let vsteps = kernel.batch_visits(3, 9, 78, 0..67, &mut |v| visits[v] += 1);
            let mut until = Vec::new();
            kernel.batch_until(
                5,
                200,
                0xface,
                0..70,
                &|_, next, _, _: &mut u64| (next == 5).then_some(()),
                &mut |i, v, s| until.push((i, v, s)),
            );
            let mut pairs = Vec::new();
            kernel.batch_pairs(
                0,
                100,
                13,
                0x9a12,
                0..40,
                &|u, z: &mut f64| *z += weight(u),
                &|u, z: &mut f64| *z -= 0.5 * weight(u),
                &mut |i, z, s| pairs.push((i, z.to_bits(), s)),
            );
            (ends, visits, vsteps, until, pairs)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn batch_until_matches_per_walk_reference_and_refills_lanes() {
        // Walk until first return to the start (or the cap): compare the
        // variable-length lockstep driver against stepping each stream
        // alone, across ranges that exercise refill (more pending walks
        // than lanes), a partial first block (fewer than one full block of
        // the *widest* width) and an empty range — at every lane width.
        let g = generators::social_network_like(300, 7.0, 6).unwrap();
        let (start, max_steps, seed) = (5, 200, 0xface);
        let judge = |_prev: NodeId, next: NodeId, _steps: u64, _flags: &mut u64| {
            (next == start).then_some(())
        };
        let reference = |range: Range<u64>| {
            let mut out = Vec::new();
            for i in range {
                let mut rng = StreamRng::new(seed, i);
                let mut current = start;
                let mut result = (i, None, max_steps as u64);
                for step in 1..=max_steps as u64 {
                    let Some(next) = WalkKernel::new(&g).step(current, &mut rng) else {
                        result = (i, None, step - 1);
                        break;
                    };
                    if next == start {
                        result = (i, Some(()), step);
                        break;
                    }
                    current = next;
                }
                out.push(result);
            }
            out.sort_unstable();
            out
        };
        for width in [LaneWidth::L8, LaneWidth::L16, LaneWidth::L32] {
            let kernel = WalkKernel::new(&g).with_lanes(width);
            for range in [0u64..5, 7..7, 0..32, 3..(3 * 32 + 17)] {
                let mut got = Vec::new();
                kernel.batch_until(
                    start,
                    max_steps,
                    seed,
                    range.clone(),
                    &judge,
                    &mut |i, v, s| {
                        got.push((i, v, s));
                    },
                );
                assert_eq!(
                    got.len() as u64,
                    range.end - range.start,
                    "every walk retires exactly once ({width:?}, {range:?})"
                );
                got.sort_unstable();
                assert_eq!(got, reference(range.clone()), "{width:?} {range:?}");
            }
            // A zero step cap truncates every walk before its first draw.
            let mut got = Vec::new();
            kernel.batch_until(start, 0, seed, 4..9, &judge, &mut |i, v, s| {
                got.push((i, v, s))
            });
            assert_eq!(got, (4..9).map(|i| (i, None, 0)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn batch_pairs_matches_sequential_pair_walks_bit_for_bit() {
        // Pair i must see exactly the draw schedule and float accumulation
        // order of running its s-walk then t-walk alone on stream (seed, i),
        // and finish must fire in index order — at every lane width.
        let g = generators::social_network_like(200, 9.0, 1).unwrap();
        let (s, t, len, seed) = (0usize, 100usize, 13usize, 0x9a12u64);
        let weight = |u: NodeId| (u as f64 + 1.0).ln();
        let reference: Vec<(u64, f64, u64)> = (0..(2 * 32 + 9) as u64)
            .map(|i| {
                let mut rng = StreamRng::new(seed, i);
                let kernel = WalkKernel::new(&g);
                let mut z = 0.0;
                let mut steps = 0;
                steps += kernel.for_each_visit(s, len, &mut rng, |u| z += weight(u));
                steps += kernel.for_each_visit(t, len, &mut rng, |u| z -= 0.5 * weight(u));
                (i, z, steps)
            })
            .collect();
        for width in [LaneWidth::L8, LaneWidth::L16, LaneWidth::L32] {
            let kernel = WalkKernel::new(&g).with_lanes(width);
            for (range, expect) in [
                (0u64..reference.len() as u64, &reference[..]),
                (0..5, &reference[..5]), // fewer pairs than one block
                (9..9, &reference[..0]), // empty
            ] {
                let mut got = Vec::new();
                kernel.batch_pairs(
                    s,
                    t,
                    len,
                    seed,
                    range,
                    &|u, z: &mut f64| *z += weight(u),
                    &|u, z: &mut f64| *z -= 0.5 * weight(u),
                    &mut |i, z, steps| got.push((i, z, steps)),
                );
                let expect: Vec<(u64, f64, u64)> = expect.to_vec();
                assert_eq!(got.len(), expect.len());
                for (g_r, e_r) in got.iter().zip(&expect) {
                    assert_eq!(g_r.0, e_r.0, "index order preserved");
                    assert_eq!(
                        g_r.1.to_bits(),
                        e_r.1.to_bits(),
                        "pair {} at {width:?}",
                        g_r.0
                    );
                    assert_eq!(g_r.2, e_r.2);
                }
            }
        }
    }

    #[test]
    fn scratch_tallies_and_resets_without_zeroing() {
        let mut scratch = WalkScratch::new(10);
        scratch.begin();
        scratch.bump(3);
        scratch.bump(3);
        scratch.bump(7);
        scratch.add_steps(5);
        assert_eq!(scratch.count(3), 2);
        assert_eq!(scratch.count(7), 1);
        assert_eq!(scratch.count(0), 0);
        assert_eq!(scratch.steps(), 5);
        assert_eq!(scratch.touched(), &[3, 7]);
        assert_eq!(scratch.to_sorted_pairs(), vec![(3, 2), (7, 1)]);

        // A new tally sees none of the old counts.
        scratch.begin();
        assert_eq!(scratch.count(3), 0);
        assert_eq!(scratch.steps(), 0);
        assert!(scratch.touched().is_empty());
        scratch.bump(3);
        assert_eq!(scratch.count(3), 1, "stale count must not leak through");
    }

    #[test]
    fn scratch_epoch_wraparound_clears_stale_stamps() {
        let mut scratch = WalkScratch::new(4);
        scratch.begin();
        scratch.bump(1);
        scratch.bump(2);
        // Jump to the last epoch before the wrap and tally under it.
        scratch.force_epoch(u32::MAX - 1);
        scratch.begin(); // epoch == u32::MAX
        scratch.bump(2);
        scratch.bump(2);
        assert_eq!(scratch.count(2), 2);
        scratch.begin(); // wraps: stamps bulk-reset, epoch == 1
        assert_eq!(scratch.count(1), 0);
        assert_eq!(scratch.count(2), 0);
        scratch.bump(2);
        assert_eq!(
            scratch.count(2),
            1,
            "post-wrap tally must start from zero, not a stale pre-wrap count"
        );
        // The dangerous case: ids stamped before the wrap at epoch 1 must not
        // alias the post-wrap epoch 1 — the bulk reset guarantees it.
        assert_eq!(scratch.count(1), 0);
        let mut second_cycle = WalkScratch::new(4);
        second_cycle.begin(); // epoch 1, stamps id 0
        second_cycle.bump(0);
        second_cycle.force_epoch(u32::MAX);
        second_cycle.begin(); // wraps back to epoch 1
        assert_eq!(
            second_cycle.count(0),
            0,
            "epoch reuse after wrap must not resurrect old counts"
        );
    }

    #[test]
    fn pool_reuses_scratches() {
        let pool = ScratchPool::new(6);
        assert_eq!(pool.idle(), 0);
        let mut a = pool.take();
        a.begin();
        a.bump(5);
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        // The reused scratch starts clean after begin().
        let mut b = pool.take();
        assert_eq!(pool.idle(), 0);
        b.begin();
        assert_eq!(b.count(5), 0);
        pool.put(b);
    }

    #[test]
    fn par_tally_is_thread_count_invariant_and_reuses_the_pool() {
        let g = generators::social_network_like(150, 8.0, 3).unwrap();
        let kernel = WalkKernel::new(&g);
        let pool = ScratchPool::new(g.num_nodes());
        let run = |threads: usize, seed: u64| {
            par_tally(5_000, threads, &pool, |range, scratch| {
                kernel.batch_endpoints(0, 10, seed, range, &mut |_, end, steps| {
                    scratch.bump(end);
                    scratch.add_steps(steps);
                })
            })
        };
        let (base_counts, base_steps) = run(1, 42);
        assert_eq!(base_counts.iter().sum::<u64>(), 5_000);
        assert_eq!(base_steps, 50_000);
        for threads in [2, 8] {
            let (counts, steps) = run(threads, 42);
            assert_eq!(base_counts, counts, "counts differ at {threads} threads");
            assert_eq!(base_steps, steps);
        }
        // A second bulk call on the same pool reuses scratches and must not
        // see stale tallies from the first.
        assert!(pool.idle() >= 1);
        let (again, _) = run(1, 42);
        assert_eq!(base_counts, again, "scratch reuse leaked stale counts");
        let (other_seed, _) = run(1, 43);
        assert_ne!(base_counts, other_seed);
    }

    #[test]
    fn par_tally_sparse_matches_dense_counts() {
        let g = generators::barabasi_albert(120, 3, 1).unwrap();
        let kernel = WalkKernel::new(&g);
        let pool = ScratchPool::new(g.num_nodes());
        let task = |range: std::ops::Range<u64>, scratch: &mut WalkScratch| {
            kernel.batch_endpoints(3, 6, 9, range, &mut |_, end, steps| {
                scratch.bump(end);
                scratch.add_steps(steps);
            })
        };
        let (dense, dense_steps) = par_tally(3_000, 1, &pool, task);
        for threads in [1, 4] {
            let (sparse, steps) = par_tally_sparse(3_000, threads, &pool, task);
            assert_eq!(steps, dense_steps);
            assert!(sparse.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
            let mut from_sparse = vec![0u64; g.num_nodes()];
            for &(id, c) in &sparse {
                from_sparse[id] += c;
            }
            assert_eq!(from_sparse, dense);
        }
        let (empty, steps) = par_tally_sparse(0, 2, &pool, task);
        assert!(empty.is_empty());
        assert_eq!(steps, 0);
    }
}
