//! TP — the truncated-walk Monte Carlo baseline (Section 2.3.2 of the paper,
//! from Peng et al. \[49\]); the state-of-the-art competitor AMC improves on.
//!
//! TP evaluates the truncated series of Eq. (4) term by term: for every walk
//! length `i ∈ [1, ℓ]` (with Peng et al.'s pair-independent ℓ of Eq. 5) it
//! simulates a fresh batch of length-`i` walks from `s` and from `t` and uses
//! the empirical fractions ending at `s`/`t` as estimates of `p_i(·, ·)`.
//! The Chernoff–Hoeffding analysis of \[49\] requires
//! `40 ℓ² ln(8ℓ/δ) / ε²` walks *per length*, i.e. `Θ(ℓ³ log ℓ / ε²)` walks in
//! total — the sheer sample count that motivates AMC.
//!
//! Because the full budget is astronomically slow at small ε (exactly as the
//! paper reports: TP misses the one-day timeout on several datasets), the
//! implementation exposes a `sample_scale` multiplier and a walk budget so the
//! harness can run TP scaled-down and label the result accordingly. The
//! default is the faithful budget.

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use crate::length;
use er_graph::NodeId;
use er_walks::par;
use er_walks::truncated::walk_endpoint;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The TP estimator.
#[derive(Clone)]
pub struct Tp {
    context: GraphContext,
    config: ApproxConfig,
    rng: StdRng,
    sample_scale: f64,
    walk_budget: Option<u64>,
}

impl Tp {
    /// Creates a TP estimator with the faithful sample budget of \[49\].
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        Tp {
            context: context.clone(),
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x0071),
            sample_scale: 1.0,
            walk_budget: None,
        }
    }

    /// Scales the per-length walk count by `scale` (< 1 trades accuracy for
    /// speed; the harness reports when this is used).
    pub fn with_sample_scale(mut self, scale: f64) -> Self {
        self.sample_scale = scale.max(0.0);
        self
    }

    /// Caps the total number of walks per query.
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.walk_budget = Some(budget);
        self
    }

    /// Peng et al.'s maximum walk length ℓ for the current ε.
    pub fn max_length(&self) -> usize {
        length::peng_length(self.config.epsilon, self.context.lambda())
    }

    /// Walks per length required by the Chernoff–Hoeffding analysis:
    /// `40 ℓ² ln(8ℓ/δ) / ε²`, scaled by `sample_scale`.
    pub fn walks_per_length(&self) -> u64 {
        let ell = self.max_length().max(1) as f64;
        let eps = self.config.epsilon;
        let raw = 40.0 * ell * ell * (8.0 * ell / self.config.delta).ln() / (eps * eps);
        (raw * self.sample_scale)
            .ceil()
            .max(1.0)
            .min(u64::MAX as f64) as u64
    }
}

impl crate::estimator::ForkableEstimator for Tp {
    fn fork(&self, stream: u64) -> Self {
        let mut fork = self.clone();
        fork.rng =
            StdRng::seed_from_u64(er_walks::par::mix_seed(self.config.seed ^ 0x0071, stream));
        fork
    }
}

impl ResistanceEstimator for Tp {
    fn name(&self) -> &'static str {
        "TP"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        let g = self.context.graph();
        let ds = g.degree(s) as f64;
        let dt = g.degree(t) as f64;
        let ell = self.max_length();
        let per_length = self.walks_per_length();
        let mut cost = CostBreakdown::default();
        // i = 0 term of Eq. (4): p_0(s,s) = p_0(t,t) = 1, p_0(s,t) = p_0(t,s) = 0.
        let mut value = 1.0 / ds + 1.0 / dt;
        for i in 1..=ell {
            // The per-length batch runs whole or not at all: a partial batch
            // would bias the empirical p_i estimates it feeds.
            if let Some(budget) = self.walk_budget {
                if cost
                    .random_walks
                    .saturating_add(per_length.saturating_mul(2))
                    > budget
                {
                    break;
                }
            }
            let fan_seed = self.rng.next_u64();
            // (hits_ss, hits_st, hits_tt, hits_ts) over the batch; each walk
            // pair k draws from its own (fan_seed, k) stream.
            let hits = par::par_fold_indexed(
                per_length,
                fan_seed,
                self.config.threads,
                || (0u64, 0u64, 0u64, 0u64),
                |_, walk_rng, acc| {
                    let end_s = walk_endpoint(g, s, i, walk_rng);
                    let end_t = walk_endpoint(g, t, i, walk_rng);
                    if end_s == s {
                        acc.0 += 1;
                    }
                    if end_s == t {
                        acc.1 += 1;
                    }
                    if end_t == t {
                        acc.2 += 1;
                    }
                    if end_t == s {
                        acc.3 += 1;
                    }
                },
                |total, part| {
                    total.0 += part.0;
                    total.1 += part.1;
                    total.2 += part.2;
                    total.3 += part.3;
                },
            );
            cost.random_walks += 2 * per_length;
            cost.walk_steps = cost
                .walk_steps
                .saturating_add(per_length.saturating_mul(2 * i as u64));
            let denom = per_length as f64;
            value += hits.0 as f64 / denom / ds + hits.2 as f64 / denom / dt
                - hits.1 as f64 / denom / dt
                - hits.3 as f64 / denom / ds;
        }
        Ok(Estimate { value, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn walk_count_grows_cubically_with_length() {
        let g = generators::social_network_like(200, 8.0, 4).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let coarse = Tp::new(&ctx, ApproxConfig::with_epsilon(0.5));
        let fine = Tp::new(&ctx, ApproxConfig::with_epsilon(0.05));
        assert!(fine.max_length() > coarse.max_length());
        assert!(fine.walks_per_length() > coarse.walks_per_length());
        let scaled = Tp::new(&ctx, ApproxConfig::with_epsilon(0.5)).with_sample_scale(0.01);
        assert!(scaled.walks_per_length() < coarse.walks_per_length());
    }

    #[test]
    fn tp_is_accurate_on_a_fast_mixing_graph() {
        // K_15 mixes in one step so Peng's ell is tiny and the full budget is
        // affordable; TP must hit the epsilon target.
        let g = generators::complete(15).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let exact = LaplacianSolver::for_ground_truth(&g).effective_resistance(0, 7);
        let eps = 0.1;
        let mut tp = Tp::new(&ctx, ApproxConfig::with_epsilon(eps).reseeded(2));
        let est = tp.estimate(0, 7).unwrap();
        assert!(
            (est.value - exact).abs() <= eps,
            "tp {} vs exact {exact}",
            est.value
        );
        assert!(est.cost.random_walks > 0);
    }

    #[test]
    fn tp_uses_vastly_more_walks_than_amc() {
        // The Remark of Section 3.3.2: TP's walk count exceeds AMC's by at
        // least ~20ℓ on the same query.
        use crate::amc::Amc;
        let g = generators::social_network_like(300, 12.0, 15).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.3).reseeded(4);
        let mut amc = Amc::new(&ctx, cfg);
        let amc_walks = amc.estimate(0, 150).unwrap().cost.random_walks;
        let tp = Tp::new(&ctx, cfg);
        let tp_walks = tp.walks_per_length() * tp.max_length() as u64 * 2;
        assert!(
            tp_walks > 10 * amc_walks.max(1),
            "tp {tp_walks} vs amc {amc_walks}"
        );
    }

    #[test]
    fn walk_budget_caps_the_run() {
        let g = generators::social_network_like(200, 8.0, 3).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut tp = Tp::new(&ctx, ApproxConfig::with_epsilon(0.2)).with_walk_budget(1_000);
        let est = tp.estimate(0, 100).unwrap();
        assert!(est.cost.random_walks <= 1_000);
        assert!(est.value.is_finite());
        assert_eq!(tp.estimate(5, 5).unwrap().value, 0.0);
    }
}
