//! EXACT — effective resistance from the pseudo-inverse of the Laplacian
//! (Definition 2.1 of the paper).
//!
//! The paper's EXACT baseline materialises `L† ∈ R^{n×n}`, which needs O(n²)
//! memory and O(n³) time; it only completes on the smallest dataset and runs
//! out of memory elsewhere. This implementation reproduces both behaviours:
//! the dense path answers queries in O(n) after an O(n³) preprocessing, and a
//! configurable node cap makes larger graphs fail with
//! [`EstimatorError::BudgetExceeded`] just as the paper reports out-of-memory.
//!
//! For validation and ground-truth purposes an alternative constructor
//! answers each query with a conjugate-gradient Laplacian solve instead
//! (no O(n²) memory, but O(m·√κ) per query).
//!
//! The dense pseudo-inverse is assembled column by column from CG solves
//! (`L x_j = e_j`, centred), which is far faster than a full eigendecomposition
//! at the sizes the cap allows while producing the same matrix up to solver
//! tolerance; the Jacobi eigendecomposition in `er-linalg` remains available
//! for small matrices and is cross-checked against this path in the tests.

use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use er_graph::NodeId;
use er_linalg::{DenseMatrix, LaplacianSolver};

#[derive(Clone)]
enum Backend {
    PseudoInverse(Box<DenseMatrix>),
    /// A conjugate-gradient solve per query; the solver itself is constructed
    /// on demand (it only borrows the graph and is free to build).
    Solver,
}

/// The EXACT estimator.
#[derive(Clone)]
pub struct Exact {
    context: GraphContext,
    backend: Backend,
}

impl Exact {
    /// Default node cap for the dense pseudo-inverse path (mirrors the paper's
    /// out-of-memory failures on anything but the smallest dataset, scaled to
    /// laptop memory).
    pub const DEFAULT_NODE_CAP: usize = 5_000;

    /// Builds the dense pseudo-inverse with the default node cap.
    pub fn new(context: &GraphContext) -> Result<Self, EstimatorError> {
        Self::with_node_cap(context, Self::DEFAULT_NODE_CAP)
    }

    /// Builds the dense pseudo-inverse, failing if the graph has more than
    /// `node_cap` nodes.
    pub fn with_node_cap(context: &GraphContext, node_cap: usize) -> Result<Self, EstimatorError> {
        let graph = context.graph();
        let n = graph.num_nodes();
        if n > node_cap {
            return Err(EstimatorError::BudgetExceeded {
                resource: "memory",
                message: format!(
                    "EXACT needs an {n}×{n} dense pseudo-inverse; cap is {node_cap} nodes"
                ),
            });
        }
        // Assemble L† column by column: column j is the centred solution of
        // L x = e_j. (L† is symmetric, so storing solutions as columns is the
        // full pseudo-inverse.)
        let solver = LaplacianSolver::new(graph, 1e-10, 20 * n.max(100));
        let mut pinv = DenseMatrix::zeros(n);
        let mut rhs = vec![0.0; n];
        for j in 0..n {
            rhs[j] = 1.0;
            let (x, _) = solver.solve(&rhs);
            rhs[j] = 0.0;
            for (i, &value) in x.iter().enumerate() {
                pinv.set(i, j, value);
            }
        }
        Ok(Exact {
            context: context.clone(),
            backend: Backend::PseudoInverse(Box::new(pinv)),
        })
    }

    /// Uses a CG Laplacian solve per query instead of materialising `L†`.
    pub fn with_solver(context: &GraphContext) -> Self {
        Exact {
            context: context.clone(),
            backend: Backend::Solver,
        }
    }
}

impl crate::estimator::ForkableEstimator for Exact {
    fn fork(&self, _stream: u64) -> Self {
        self.clone() // deterministic: every fork computes identical values
    }
}

impl ResistanceEstimator for Exact {
    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        match &self.backend {
            Backend::PseudoInverse(pinv) => {
                // r(s, t) = L†(s,s) + L†(t,t) − 2 L†(s,t)
                let value = pinv.get(s, s) + pinv.get(t, t) - 2.0 * pinv.get(s, t);
                Ok(Estimate {
                    value,
                    cost: CostBreakdown::default(),
                })
            }
            Backend::Solver => {
                let solver = LaplacianSolver::for_ground_truth(self.context.graph());
                let n = self.context.graph().num_nodes();
                let mut b = vec![0.0; n];
                b[s] = 1.0;
                b[t] = -1.0;
                let (x, outcome) = solver.solve(&b);
                Ok(Estimate {
                    value: x[s] - x[t],
                    cost: CostBreakdown {
                        solver_iterations: outcome.iterations as u64,
                        ..CostBreakdown::default()
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApproxConfig;
    use er_graph::generators;

    #[test]
    fn exact_matches_closed_forms() {
        let g = generators::complete(8).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut exact = Exact::new(&ctx).unwrap();
        assert!((exact.estimate(0, 5).unwrap().value - 0.25).abs() < 1e-8);
        assert_eq!(exact.estimate(2, 2).unwrap().value, 0.0);

        let path = generators::path(9).unwrap();
        // path is bipartite, so use with_lambda to skip ergodicity? path IS
        // bipartite — construct the context for the lollipop instead, which is
        // ergodic and still has hand-checkable resistances along its tail.
        let lol = generators::lollipop(4, 5).unwrap();
        let ctx = GraphContext::preprocess(&lol).unwrap();
        let mut exact = Exact::new(&ctx).unwrap();
        // the tail is a path: consecutive tail nodes are at resistance 1
        let r = exact.estimate(4, 5).unwrap().value;
        assert!((r - 1.0).abs() < 1e-8);
        drop(path);
    }

    #[test]
    fn node_cap_reproduces_out_of_memory_behaviour() {
        let g = generators::social_network_like(500, 6.0, 1).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        match Exact::with_node_cap(&ctx, 100) {
            Err(EstimatorError::BudgetExceeded { resource, .. }) => assert_eq!(resource, "memory"),
            other => panic!("expected BudgetExceeded, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn solver_backend_agrees_with_pseudo_inverse() {
        let g = generators::social_network_like(120, 8.0, 5).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut dense = Exact::new(&ctx).unwrap();
        let mut cg = Exact::with_solver(&ctx);
        for &(s, t) in &[(0usize, 60usize), (10, 110), (55, 56)] {
            let a = dense.estimate(s, t).unwrap().value;
            let b = cg.estimate(s, t).unwrap().value;
            assert!((a - b).abs() < 1e-6, "({s},{t}): {a} vs {b}");
            assert!(cg.estimate(s, t).unwrap().cost.solver_iterations > 0);
        }
        let _ = ApproxConfig::default();
    }
}
