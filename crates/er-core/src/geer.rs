//! GEER — Greedy Estimation of Effective Resistance (Algorithm 3 of the paper).
//!
//! GEER splits the truncated series of Eq. (4) at a switch point ℓ_b:
//! the prefix `r*_b` (hops 0..=ℓ_b) is computed exactly by SMM's sparse
//! matrix–vector iterations, and the tail `r*_f` (hops ℓ_b+1..=ℓ) is estimated
//! by AMC using the SMM frontier vectors `s*`, `t*` as walk weight vectors —
//! which is valid because the tail rewrites exactly as `q(s, t)` of Eq. (12)
//! with `ℓ_f = ℓ − ℓ_b`, `s = s*`, `t = t*` (Section 4.1.2).
//!
//! The switch point is chosen greedily (Eq. 17): keep iterating SMM while the
//! cost of the *next* iteration, `Σ_{v ∈ supp(s*)} d(v) + Σ_{v ∈ supp(t*)} d(v)`,
//! is at most the remaining Monte Carlo walk budget `h(ℓ − ℓ_b)`.

use crate::amc::{self, AmcParameters};
use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use crate::length;
use crate::smm;
use er_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How GEER chooses the SMM/AMC switch point ℓ_b.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchRule {
    /// The paper's greedy rule (Eq. 17) — the default.
    Greedy,
    /// A fixed ℓ_b (used by the Fig. 10 ablation, which sweeps ℓ*_b ± x).
    Fixed(usize),
    /// The greedy choice shifted by a signed offset (clamped to `0..=ℓ`); this
    /// is exactly the "ℓ*_b ± x" sweep of Fig. 10.
    GreedyOffset(isize),
}

/// Detailed trace of one GEER query, exposed for the parameter-study benches.
#[derive(Clone, Debug)]
pub struct GeerTrace {
    /// Maximum walk length ℓ from Eq. (6).
    pub ell: usize,
    /// Switch point ℓ_b actually used.
    pub ell_b: usize,
    /// Deterministic prefix `r_b(s, t)`.
    pub r_b: f64,
    /// Monte Carlo tail estimate `r_f(s, t)`.
    pub r_f: f64,
    /// Batches used by the embedded AMC run.
    pub amc_batches: usize,
    /// Whether AMC terminated early via the Bernstein condition.
    pub amc_terminated_early: bool,
    /// Work performed.
    pub cost: CostBreakdown,
}

impl GeerTrace {
    /// The final estimate `r'(s, t) = r_b + r_f`.
    pub fn value(&self) -> f64 {
        self.r_b + self.r_f
    }
}

/// The GEER estimator.
#[derive(Clone)]
pub struct Geer {
    context: GraphContext,
    config: ApproxConfig,
    rng: StdRng,
    switch_rule: SwitchRule,
    walk_budget: Option<u64>,
}

impl Geer {
    /// Creates a GEER estimator with the greedy switch rule of Eq. (17).
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        Geer {
            context: context.clone(),
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x6eee),
            switch_rule: SwitchRule::Greedy,
            walk_budget: None,
        }
    }

    /// Overrides the switch rule (Fig. 10 ablation).
    pub fn with_switch_rule(mut self, rule: SwitchRule) -> Self {
        self.switch_rule = rule;
        self
    }

    /// Sets an optional per-query walk budget forwarded to the embedded AMC.
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.walk_budget = Some(budget);
        self
    }

    /// The greedy switch point ℓ*_b the estimator would pick for `(s, t)`
    /// under the current configuration (useful to centre the Fig. 10 sweep).
    pub fn greedy_switch_point(&mut self, s: NodeId, t: NodeId) -> Result<usize, EstimatorError> {
        Ok(self.run(s, t, SwitchRule::Greedy)?.ell_b)
    }

    /// Answers a query and returns the full trace.
    pub fn estimate_traced(&mut self, s: NodeId, t: NodeId) -> Result<GeerTrace, EstimatorError> {
        self.run(s, t, self.switch_rule)
    }

    fn run(&mut self, s: NodeId, t: NodeId, rule: SwitchRule) -> Result<GeerTrace, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        let g = self.context.graph();
        if s == t {
            return Ok(GeerTrace {
                ell: 0,
                ell_b: 0,
                r_b: 0.0,
                r_f: 0.0,
                amc_batches: 0,
                amc_terminated_early: true,
                cost: CostBreakdown::default(),
            });
        }
        let epsilon = self.config.epsilon;
        let delta = self.config.delta;
        let tau = self.config.tau.max(1);
        let ell = length::refined_length(epsilon, self.context.lambda(), g.degree(s), g.degree(t));

        // Resolve the switch rule into a stopping predicate for the SMM loop.
        let greedy_limit = match rule {
            SwitchRule::Greedy => ell,
            SwitchRule::GreedyOffset(_) => ell,
            SwitchRule::Fixed(b) => b.min(ell),
        };
        let use_greedy = !matches!(rule, SwitchRule::Fixed(_));
        let ds = g.degree(s);
        let dt = g.degree(t);
        let run = smm::run_smm_until(g, s, t, greedy_limit, |ell_b, s_star, t_star| {
            if !use_greedy {
                return false; // Fixed rule: run exactly `greedy_limit` iterations.
            }
            // Eq. (17): stop SMM once the next iteration's SpMV cost exceeds
            // the remaining Monte Carlo budget h(ℓ − ℓ_b) — both sides in
            // *operations*: SpMV ops against walk steps (2(ℓ − ℓ_b) row
            // loads per walk pair), not walk pairs.
            let spmv_cost = smm::next_iteration_cost(g, s_star, t_star);
            let remaining = ell - ell_b;
            let psi = amc::psi_bound(s_star, t_star, ds, dt, remaining);
            let eta = amc::eta_star(psi, epsilon, delta, tau);
            let walk_budget = amc::total_walk_step_budget(eta, tau, remaining);
            spmv_cost > walk_budget
        });

        // Apply the Fig. 10 offset by extending or rolling back the greedy
        // choice: rolling back is implemented by re-running SMM for fewer
        // iterations (cheap relative to the walks it replaces).
        let run = match rule {
            SwitchRule::GreedyOffset(offset) => {
                let target = (run.iterations as isize + offset).clamp(0, ell as isize) as usize;
                if target == run.iterations {
                    run
                } else {
                    smm::run_smm(g, s, t, target)
                }
            }
            _ => run,
        };

        let ell_b = run.iterations;
        let mut cost = run.cost;
        let remaining = ell.saturating_sub(ell_b);
        let mut params = AmcParameters {
            epsilon,
            delta,
            tau,
            ell_f: remaining,
            walk_budget: self.walk_budget,
            threads: self.config.threads,
        };
        if let Some(budget) = self.walk_budget {
            params.walk_budget = Some(budget.saturating_sub(cost.random_walks));
        }
        let amc_out = amc::run_amc(g, s, t, &run.s_star, &run.t_star, &params, &mut self.rng);
        cost += amc_out.cost;
        Ok(GeerTrace {
            ell,
            ell_b,
            r_b: run.r_b,
            r_f: amc_out.r_f,
            amc_batches: amc_out.batches_used,
            amc_terminated_early: amc_out.terminated_early,
            cost,
        })
    }
}

impl crate::estimator::ForkableEstimator for Geer {
    fn fork(&self, stream: u64) -> Self {
        let mut fork = self.clone();
        fork.rng =
            StdRng::seed_from_u64(er_walks::par::mix_seed(self.config.seed ^ 0x6eee, stream));
        fork
    }
}

impl ResistanceEstimator for Geer {
    fn name(&self) -> &'static str {
        "GEER"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        let trace = self.estimate_traced(s, t)?;
        Ok(Estimate {
            value: trace.value(),
            cost: trace.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn geer_is_epsilon_accurate() {
        let g = generators::social_network_like(400, 16.0, 21).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        for &eps in &[0.5, 0.2] {
            let mut geer = Geer::new(&ctx, ApproxConfig::with_epsilon(eps).reseeded(7));
            for &(s, t) in &[(0usize, 200usize), (13, 399), (100, 101)] {
                let est = geer.estimate(s, t).unwrap();
                let exact = solver.effective_resistance(s, t);
                assert!(
                    (est.value - exact).abs() <= eps,
                    "eps={eps} ({s},{t}): geer {} vs exact {exact}",
                    est.value
                );
            }
        }
    }

    #[test]
    fn geer_handles_identical_nodes_and_edge_pairs() {
        let g = generators::complete(20).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut geer = Geer::new(&ctx, ApproxConfig::with_epsilon(0.1));
        assert_eq!(geer.estimate(3, 3).unwrap().value, 0.0);
        let est = geer.estimate(0, 1).unwrap();
        assert!((est.value - 0.1).abs() <= 0.1, "K_20 edge ER is 2/20 = 0.1");
    }

    #[test]
    fn trace_is_consistent_with_estimate() {
        let g = generators::social_network_like(300, 10.0, 4).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.2).reseeded(5);
        let trace = Geer::new(&ctx, cfg).estimate_traced(1, 200).unwrap();
        let est = Geer::new(&ctx, cfg).estimate(1, 200).unwrap();
        assert!((trace.value() - est.value).abs() < 1e-12);
        assert!(trace.ell_b <= trace.ell);
        assert_eq!(trace.cost, est.cost);
    }

    #[test]
    fn fixed_switch_rule_controls_smm_depth() {
        let g = generators::social_network_like(300, 10.0, 6).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.2);
        let mut geer = Geer::new(&ctx, cfg).with_switch_rule(SwitchRule::Fixed(2));
        let trace = geer.estimate_traced(0, 150).unwrap();
        assert_eq!(trace.ell_b, 2.min(trace.ell));
        // Fixed(0) degenerates to pure AMC behaviour (prefix only has the hop-0 term).
        let mut pure = Geer::new(&ctx, cfg).with_switch_rule(SwitchRule::Fixed(0));
        let trace0 = pure.estimate_traced(0, 150).unwrap();
        assert_eq!(trace0.ell_b, 0);
        let g_ref = ctx.graph();
        let hop0 = 1.0 / g_ref.degree(0) as f64 + 1.0 / g_ref.degree(150) as f64;
        assert!((trace0.r_b - hop0).abs() < 1e-12);
    }

    #[test]
    fn greedy_offset_shifts_the_switch_point() {
        let g = generators::social_network_like(400, 12.0, 8).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.1).reseeded(3);
        let base = Geer::new(&ctx, cfg).estimate_traced(2, 300).unwrap();
        let plus = Geer::new(&ctx, cfg)
            .with_switch_rule(SwitchRule::GreedyOffset(2))
            .estimate_traced(2, 300)
            .unwrap();
        let minus = Geer::new(&ctx, cfg)
            .with_switch_rule(SwitchRule::GreedyOffset(-2))
            .estimate_traced(2, 300)
            .unwrap();
        assert_eq!(plus.ell_b, (base.ell_b + 2).min(base.ell));
        assert_eq!(minus.ell_b, base.ell_b.saturating_sub(2));
    }

    #[test]
    fn geer_accuracy_matches_amc_but_with_fewer_walks() {
        // The headline claim: GEER keeps the guarantee while replacing most of
        // the random walks with cheap sparse matvecs. Compare the number of
        // walks on a mid-size graph.
        use crate::amc::Amc;
        let g = generators::social_network_like(500, 20.0, 13).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.1).reseeded(17);
        let mut amc = Amc::new(&ctx, cfg);
        let mut geer = Geer::new(&ctx, cfg);
        let mut amc_walks = 0u64;
        let mut geer_walks = 0u64;
        for &(s, t) in &[(0usize, 250usize), (9, 499), (77, 78)] {
            amc_walks += amc.estimate(s, t).unwrap().cost.random_walks;
            geer_walks += geer.estimate(s, t).unwrap().cost.random_walks;
        }
        assert!(
            geer_walks < amc_walks,
            "GEER used {geer_walks} walks, AMC used {amc_walks}"
        );
    }
}
