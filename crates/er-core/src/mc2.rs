//! MC2 — the first-visit-via-edge Monte Carlo baseline for *edge* queries
//! (Section 2.3.1 of the paper, from Peng et al. \[49\]).
//!
//! For `(s, t) ∈ E`, `r(s, t)` equals the probability that a random walk
//! started at `s` makes its first visit to `t` over the edge `(s, t)` itself.
//! MC2 estimates that probability directly from first-hit trials. Under the
//! assumption `r(s, t) > γ`, `3 ln(1/δ) / (ε² γ)` trials suffice; with the
//! universal lower bound `r(s, t) ≥ 1/(2m)` for edges, the worst-case trial
//! count is `6 m ln(1/δ) / ε²` — which is why the paper reports MC2 as slow on
//! large graphs despite its simplicity.

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use er_graph::NodeId;
use er_walks::hitting::first_hit_trials;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The MC2 estimator (edge queries only).
#[derive(Clone)]
pub struct Mc2 {
    context: GraphContext,
    config: ApproxConfig,
    rng: StdRng,
    /// Assumed lower bound γ on the queried resistance; `None` uses the
    /// universal bound `1/(2m)`.
    gamma_lower: Option<f64>,
    max_steps_per_walk: usize,
    walk_budget: Option<u64>,
}

impl Mc2 {
    /// Default step cap per first-hit walk.
    pub const DEFAULT_MAX_STEPS: usize = 50_000_000;

    /// Creates an MC2 estimator with the universal `r ≥ 1/(2m)` lower bound.
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        Mc2 {
            context: context.clone(),
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x0c22),
            gamma_lower: None,
            max_steps_per_walk: Self::DEFAULT_MAX_STEPS,
            walk_budget: None,
        }
    }

    /// Sets a stronger assumed lower bound γ on `r(s, t)`, reducing the trial
    /// count from the worst case `6 m ln(1/δ)/ε²` to `3 ln(1/δ)/(ε² γ)`.
    pub fn with_gamma_lower(mut self, gamma: f64) -> Self {
        self.gamma_lower = Some(gamma);
        self
    }

    /// Caps the number of first-hit trials per query.
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.walk_budget = Some(budget);
        self
    }

    /// Number of trials the theory requires.
    pub fn trials(&self) -> u64 {
        let m = self.context.graph().num_edges() as f64;
        let gamma = self.gamma_lower.unwrap_or(1.0 / (2.0 * m)).max(1e-300);
        let eps = self.config.epsilon;
        let raw = 3.0 * (1.0 / self.config.delta).ln() / (eps * eps * gamma);
        raw.ceil().max(1.0).min(u64::MAX as f64) as u64
    }
}

impl crate::estimator::ForkableEstimator for Mc2 {
    fn fork(&self, stream: u64) -> Self {
        let mut fork = self.clone();
        fork.rng =
            StdRng::seed_from_u64(er_walks::par::mix_seed(self.config.seed ^ 0x0c22, stream));
        fork
    }
}

impl ResistanceEstimator for Mc2 {
    fn name(&self) -> &'static str {
        "MC2"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        let g = self.context.graph();
        if !g.has_edge(s, t) {
            return Err(EstimatorError::NotAnEdge { s, t });
        }
        let mut trials = self.trials();
        if let Some(budget) = self.walk_budget {
            trials = trials.min(budget.max(1));
        }
        let mut cost = CostBreakdown::default();
        let fan_seed = self.rng.next_u64();
        // First-hit trials run on the kernel's variable-length lockstep
        // lanes with the old per-walk draw schedule — golden values
        // unchanged by the port (pinned by tests/determinism.rs).
        let tally = first_hit_trials(
            g,
            s,
            t,
            self.max_steps_per_walk,
            trials,
            fan_seed,
            self.config.threads,
        );
        let direct = tally.via_edge;
        cost.random_walks = trials;
        cost.walk_steps = tally.steps;
        Ok(Estimate {
            value: direct as f64 / trials as f64,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn rejects_non_edge_queries() {
        let g = generators::cycle(9).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut mc2 = Mc2::new(&ctx, ApproxConfig::with_epsilon(0.5));
        assert!(matches!(
            mc2.estimate(0, 4),
            Err(EstimatorError::NotAnEdge { s: 0, t: 4 })
        ));
        assert!(mc2.estimate(0, 1).is_ok());
        assert_eq!(mc2.estimate(3, 3).unwrap().value, 0.0);
    }

    #[test]
    fn worst_case_trials_scale_with_edge_count() {
        let small = generators::complete(10).unwrap();
        let big = generators::complete(30).unwrap();
        let ctx_small = GraphContext::preprocess(&small).unwrap();
        let ctx_big = GraphContext::preprocess(&big).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.5);
        let t_small = Mc2::new(&ctx_small, cfg).trials();
        let t_big = Mc2::new(&ctx_big, cfg).trials();
        assert!(t_big > 5 * t_small);
        // a user-supplied gamma shrinks the requirement
        let with_gamma = Mc2::new(&ctx_big, cfg).with_gamma_lower(0.05).trials();
        assert!(with_gamma < t_big);
    }

    #[test]
    fn mc2_is_accurate_on_triangle_edge() {
        let g = generators::complete(3).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let exact = LaplacianSolver::for_ground_truth(&g).effective_resistance(0, 1);
        let mut mc2 = Mc2::new(&ctx, ApproxConfig::with_epsilon(0.05).reseeded(9));
        let est = mc2.estimate(0, 1).unwrap();
        assert!(
            (est.value - exact).abs() <= 0.05,
            "mc2 {} vs exact {exact}",
            est.value
        );
    }

    #[test]
    fn mc2_with_budget_still_returns_probability() {
        let g = generators::social_network_like(300, 10.0, 2).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let (s, t) = g.edges().next().unwrap();
        let mut mc2 = Mc2::new(&ctx, ApproxConfig::with_epsilon(0.01)).with_walk_budget(200);
        let est = mc2.estimate(s, t).unwrap();
        assert!(est.cost.random_walks <= 200);
        assert!((0.0..=1.0).contains(&est.value));
    }
}
