//! SMM — deterministic estimation by sparse matrix–vector multiplications
//! (Algorithm 2 of the paper).
//!
//! SMM maintains the vectors `s*` and `t*` with `s*(v) = p_i(v, s)` and
//! `t*(v) = p_i(v, t)` after `i` iterations (Eq. 15) and accumulates the
//! truncated series of Eq. (4). The implementation exploits the sparsity of
//! the frontier: the product `P x` is computed by scattering from the nodes
//! with non-zero mass, so an iteration costs `Σ_{v ∈ supp(x)} d(v)` scalar
//! operations — exactly the quantity GEER's greedy switch rule (Eq. 17)
//! compares against the Monte Carlo budget.

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use crate::length;
use er_graph::{Graph, NodeId};

/// Result of running the SMM iteration for a fixed number of steps.
#[derive(Clone, Debug)]
pub struct SmmRun {
    /// Accumulated truncated effective resistance
    /// `r_b(s, t) = Σ_{i=0}^{ℓ_b} [p_i(s,s)/d(s) + p_i(t,t)/d(t) − p_i(s,t)/d(t) − p_i(t,s)/d(s)]`.
    pub r_b: f64,
    /// `s*(v) = p_{ℓ_b}(v, s)` after the final iteration.
    pub s_star: Vec<f64>,
    /// `t*(v) = p_{ℓ_b}(v, t)` after the final iteration.
    pub t_star: Vec<f64>,
    /// Number of iterations actually performed.
    pub iterations: usize,
    /// Work performed.
    pub cost: CostBreakdown,
}

/// One scatter-based step of `x ← P x`, where `P = D⁻¹A`.
///
/// Returns the number of scalar operations (one per scanned neighbour of a
/// support node), which is `Σ_{v ∈ supp(x)} d(v)`.
pub fn transition_step(graph: &Graph, x: &[f64], out: &mut [f64]) -> u64 {
    debug_assert_eq!(x.len(), graph.num_nodes());
    debug_assert_eq!(out.len(), graph.num_nodes());
    for o in out.iter_mut() {
        *o = 0.0;
    }
    let mut ops = 0u64;
    for u in graph.nodes() {
        let xu = x[u];
        if xu == 0.0 {
            continue;
        }
        let nbrs = graph.neighbors(u);
        ops += nbrs.len() as u64;
        for &v in nbrs {
            // mass moving from u into row v of P: P(v, u) = 1 / d(v)
            out[v] += xu / graph.degree(v) as f64;
        }
    }
    ops
}

/// Cost of the *next* SMM iteration given the current frontiers: the number
/// of scalar operations `Σ_{v ∈ supp(s*)} d(v) + Σ_{v ∈ supp(t*)} d(v)`
/// (the left-hand side of Eq. 17). Exactly
/// [`support_cost`]`(s*) + `[`support_cost`]`(t*)`, so a batched driver that
/// keeps one frontier per *source* can price the per-pair switch rule from
/// per-source summaries without re-scanning the vectors.
pub fn next_iteration_cost(graph: &Graph, s_star: &[f64], t_star: &[f64]) -> u64 {
    support_cost(graph, s_star) + support_cost(graph, t_star)
}

/// `Σ_{v ∈ supp(x)} d(v)` — the exact scalar-operation cost of one
/// [`transition_step`] applied to `x` (an integer, so the per-source split of
/// [`next_iteration_cost`] loses nothing to rounding).
pub fn support_cost(graph: &Graph, x: &[f64]) -> u64 {
    let mut cost = 0u64;
    for v in graph.nodes() {
        if x[v] != 0.0 {
            cost += graph.degree(v) as u64;
        }
    }
    cost
}

/// One term of the truncated series of Eq. (4) at the current iteration:
/// `s*(s)/d(s) + t*(t)/d(t) − s*(t)/d(s) − t*(s)/d(t)`, where `s*`/`t*` are
/// the frontier vectors of `s` and `t`. Public so the batched GEER driver can
/// accumulate `r_b` from *shared* per-source frontiers in the exact
/// floating-point order the solo loop below uses.
pub fn series_term(graph: &Graph, s: NodeId, t: NodeId, s_star: &[f64], t_star: &[f64]) -> f64 {
    let ds = graph.degree(s) as f64;
    let dt = graph.degree(t) as f64;
    s_star[s] / ds + t_star[t] / dt - s_star[t] / ds - t_star[s] / dt
}

/// Runs `ell_b` iterations of Algorithm 2 starting from `s* = e_s`,
/// `t* = e_t`.
pub fn run_smm(graph: &Graph, s: NodeId, t: NodeId, ell_b: usize) -> SmmRun {
    run_smm_until(graph, s, t, ell_b, |_, _, _| false)
}

/// Runs Algorithm 2 for at most `max_iterations`, stopping early when
/// `stop(iteration, s*, t*)` returns `true` *before* the next iteration would
/// run. This is the hook GEER uses to apply its greedy switch rule (Eq. 17).
pub fn run_smm_until(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    max_iterations: usize,
    mut stop: impl FnMut(usize, &[f64], &[f64]) -> bool,
) -> SmmRun {
    let n = graph.num_nodes();
    let mut s_star = vec![0.0; n];
    let mut t_star = vec![0.0; n];
    s_star[s] = 1.0;
    t_star[t] = 1.0;
    let mut r_b = series_term(graph, s, t, &s_star, &t_star);
    let mut cost = CostBreakdown::default();
    let mut scratch = vec![0.0; n];
    let mut iterations = 0;
    while iterations < max_iterations && !stop(iterations, &s_star, &t_star) {
        let ops_s = transition_step(graph, &s_star, &mut scratch);
        std::mem::swap(&mut s_star, &mut scratch);
        let ops_t = transition_step(graph, &t_star, &mut scratch);
        std::mem::swap(&mut t_star, &mut scratch);
        cost.matvec_ops += ops_s + ops_t;
        iterations += 1;
        r_b += series_term(graph, s, t, &s_star, &t_star);
    }
    SmmRun {
        r_b,
        s_star,
        t_star,
        iterations,
        cost,
    }
}

/// Which maximum-length formula the standalone SMM estimator uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmmLengthRule {
    /// The paper's refined per-pair length (Theorem 3.1, Eq. 6) — the default.
    Refined,
    /// Peng et al.'s pair-independent length (Eq. 5), kept for the Fig. 11
    /// comparison.
    Peng,
}

/// The standalone SMM estimator (Algorithm 2 used end-to-end, as in the
/// paper's experiments where SMM is a baseline in its own right).
#[derive(Clone)]
pub struct Smm {
    context: GraphContext,
    config: ApproxConfig,
    length_rule: SmmLengthRule,
}

impl Smm {
    /// Creates an SMM estimator using the refined length of Eq. (6).
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        Smm {
            context: context.clone(),
            config,
            length_rule: SmmLengthRule::Refined,
        }
    }

    /// Creates an SMM estimator using Peng et al.'s length (Eq. 5), for the
    /// Fig. 11 ablation.
    pub fn with_peng_length(context: &GraphContext, config: ApproxConfig) -> Self {
        Smm {
            context: context.clone(),
            config,
            length_rule: SmmLengthRule::Peng,
        }
    }

    /// The number of iterations this estimator will run for a pair `(s, t)`.
    pub fn iterations_for(&self, s: NodeId, t: NodeId) -> usize {
        let g = self.context.graph();
        match self.length_rule {
            SmmLengthRule::Refined => length::refined_length(
                self.config.epsilon,
                self.context.lambda(),
                g.degree(s),
                g.degree(t),
            ),
            SmmLengthRule::Peng => length::peng_length(self.config.epsilon, self.context.lambda()),
        }
    }
}

impl crate::estimator::ForkableEstimator for Smm {
    fn fork(&self, _stream: u64) -> Self {
        self.clone() // deterministic: every fork computes identical values
    }
}

impl ResistanceEstimator for Smm {
    fn name(&self) -> &'static str {
        match self.length_rule {
            SmmLengthRule::Refined => "SMM",
            SmmLengthRule::Peng => "SMM-PengL",
        }
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        let ell = self.iterations_for(s, t);
        let run = run_smm(self.context.graph(), s, t, ell);
        Ok(Estimate {
            value: run.r_b,
            cost: run.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn transition_step_matches_matrix_free_operator() {
        use er_linalg::{LinearOperator, TransitionOp};
        let g = generators::social_network_like(120, 8.0, 3).unwrap();
        let n = g.num_nodes();
        let mut x = vec![0.0; n];
        x[5] = 0.7;
        x[17] = 0.3;
        let mut scatter = vec![0.0; n];
        let ops = transition_step(&g, &x, &mut scatter);
        let gather = TransitionOp::new(&g).apply_vec(&x);
        for v in 0..n {
            assert!((scatter[v] - gather[v]).abs() < 1e-12);
        }
        assert_eq!(ops, (g.degree(5) + g.degree(17)) as u64);
    }

    #[test]
    fn smm_vectors_hold_walk_probabilities() {
        // After i iterations, s*(v) = p_i(v, s); total mass is sum_v p_i(v, s)
        // which by reversibility equals sum_v p_i(s, v) d(v)/d(s)... instead
        // check a direct identity: d(s) * p_i(s, v) = d(v) * p_i(v, s), where
        // p_i(s, v) is computed by the dense transition matrix power.
        let g = generators::complete(6).unwrap();
        let run = run_smm(&g, 0, 1, 3);
        // On K_6, p_3(v, 0) is 0.16 for v = 0 and 0.168 for v != 0.
        assert!((run.s_star[0] - 0.16).abs() < 1e-12);
        assert!((run.s_star[3] - 0.168).abs() < 1e-12);
        assert_eq!(run.iterations, 3);
    }

    #[test]
    fn smm_converges_to_exact_er() {
        let g = generators::social_network_like(150, 10.0, 5).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        for &(s, t) in &[(0usize, 70usize), (3, 149), (20, 21)] {
            let exact = solver.effective_resistance(s, t);
            let run = run_smm(&g, s, t, 400);
            assert!(
                (run.r_b - exact).abs() < 1e-6,
                "({s},{t}): smm {} vs exact {exact}",
                run.r_b
            );
        }
    }

    #[test]
    fn smm_estimator_respects_epsilon_guarantee() {
        let g = generators::social_network_like(200, 12.0, 9).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        for &eps in &[0.5, 0.1, 0.02] {
            let mut smm = Smm::new(&ctx, ApproxConfig::with_epsilon(eps));
            for &(s, t) in &[(0usize, 100usize), (7, 180)] {
                let est = smm.estimate(s, t).unwrap();
                let exact = solver.effective_resistance(s, t);
                assert!(
                    (est.value - exact).abs() <= eps,
                    "eps={eps} ({s},{t}): {} vs {exact}",
                    est.value
                );
            }
        }
    }

    #[test]
    fn refined_length_runs_fewer_iterations_than_peng() {
        let g = generators::social_network_like(300, 20.0, 2).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let cfg = ApproxConfig::with_epsilon(0.1);
        let refined = Smm::new(&ctx, cfg);
        let peng = Smm::with_peng_length(&ctx, cfg);
        // pick a pair with large degrees so the refinement matters
        let hub = g.nodes().max_by_key(|&v| g.degree(v)).unwrap();
        let hub2 = g
            .nodes()
            .filter(|&v| v != hub)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        assert!(refined.iterations_for(hub, hub2) <= peng.iterations_for(hub, hub2));
        assert_eq!(refined.name(), "SMM");
        assert_eq!(peng.name(), "SMM-PengL");
    }

    #[test]
    fn identical_nodes_give_zero() {
        let g = generators::complete(5).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut smm = Smm::new(&ctx, ApproxConfig::default());
        assert_eq!(smm.estimate(2, 2).unwrap().value, 0.0);
    }

    #[test]
    fn early_stop_hook_is_respected() {
        let g = generators::complete(8).unwrap();
        let run = run_smm_until(&g, 0, 1, 100, |i, _, _| i >= 2);
        assert_eq!(run.iterations, 2);
        let run = run_smm_until(&g, 0, 1, 100, |_, _, _| true);
        assert_eq!(run.iterations, 0);
        // With zero iterations r_b is just the i = 0 term 1/d(s) + 1/d(t).
        assert!((run.r_b - (1.0 / 7.0 + 1.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn next_iteration_cost_counts_support_degrees() {
        let g = generators::star(10).unwrap();
        let mut s_star = vec![0.0; 10];
        let mut t_star = vec![0.0; 10];
        s_star[0] = 1.0; // hub, degree 9
        t_star[3] = 0.5; // leaf, degree 1
        t_star[4] = 0.5; // leaf, degree 1
        assert_eq!(next_iteration_cost(&g, &s_star, &t_star), 9 + 1 + 1);
    }
}
