//! MC — the commute-time / escape-probability Monte Carlo baseline
//! (Section 2.3.1 of the paper, from Peng et al. \[49\]).
//!
//! MC exploits the identity `Pr[walk from s hits t before returning to s]
//! = 1 / (d(s) · r(s, t))`: it runs η independent escape trials from `s`,
//! counts the η_r that reach `t` first, and returns
//! `r'(s, t) = η / (d(s) · η_r)`.
//!
//! Under the assumption `r(s, t) ≤ γ`, `η = 3 γ d(s) ln(1/δ) / ε²` trials give
//! an ε-approximation with probability ≥ 1 − δ. The walks are *not* truncated
//! (they wander the whole graph), which is why MC's running time grows with
//! `m` and why the paper's faster alternatives exist; a step cap keeps the
//! implementation total and is surfaced in the returned cost.

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use er_graph::NodeId;
use er_walks::hitting::escape_trials;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The MC estimator.
#[derive(Clone)]
pub struct Mc {
    context: GraphContext,
    config: ApproxConfig,
    rng: StdRng,
    /// Upper bound γ on `r(s, t)` assumed when sizing the number of trials.
    gamma: f64,
    /// Per-walk step cap (safety net; `usize::MAX` disables it in spirit).
    max_steps_per_walk: usize,
    /// Optional cap on the total number of walks per query.
    walk_budget: Option<u64>,
}

impl Mc {
    /// Default step cap per escape walk.
    pub const DEFAULT_MAX_STEPS: usize = 50_000_000;

    /// Creates an MC estimator with the assumption `r(s, t) ≤ 1` (true for
    /// every edge query and for most pairs in the well-connected graphs the
    /// paper evaluates; callers can raise γ for long-path graphs).
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        Mc {
            context: context.clone(),
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x0c11),
            gamma: 1.0,
            max_steps_per_walk: Self::DEFAULT_MAX_STEPS,
            walk_budget: None,
        }
    }

    /// Sets the assumed upper bound γ on the queried resistance.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Caps the total number of escape trials per query.
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.walk_budget = Some(budget);
        self
    }

    /// Number of escape trials the theory requires for a source of degree
    /// `d_s`: `3 γ d(s) ln(1/δ) / ε²`.
    pub fn trials_for_degree(&self, d_s: usize) -> u64 {
        let eps = self.config.epsilon;
        let raw = 3.0 * self.gamma * d_s as f64 * (1.0 / self.config.delta).ln() / (eps * eps);
        raw.ceil().max(1.0) as u64
    }
}

impl crate::estimator::ForkableEstimator for Mc {
    fn fork(&self, stream: u64) -> Self {
        let mut fork = self.clone();
        fork.rng =
            StdRng::seed_from_u64(er_walks::par::mix_seed(self.config.seed ^ 0x0c11, stream));
        fork
    }
}

impl ResistanceEstimator for Mc {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        let g = self.context.graph();
        let mut trials = self.trials_for_degree(g.degree(s));
        if let Some(budget) = self.walk_budget {
            trials = trials.min(budget.max(1));
        }
        let mut cost = CostBreakdown::default();
        let fan_seed = self.rng.next_u64();
        // The escape trials run on the kernel's variable-length lockstep
        // lanes; trial i draws from stream (fan_seed, i) with exactly the
        // draw schedule of the old per-walk loop, so the port changed no
        // golden value (pinned by tests/determinism.rs).
        let tally = escape_trials(
            g,
            s,
            t,
            self.max_steps_per_walk,
            trials,
            fan_seed,
            self.config.threads,
        );
        let hits = tally.reached;
        cost.random_walks = trials;
        cost.walk_steps = tally.steps;
        // With zero hits the escape probability estimate is 0 and the
        // resistance estimate diverges; report the largest value consistent
        // with the assumption instead (the paper's analysis assumes r ≤ γ).
        let value = if hits == 0 {
            self.gamma
        } else {
            trials as f64 / (g.degree(s) as f64 * hits as f64)
        };
        Ok(Estimate { value, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn trials_scale_with_degree_and_epsilon() {
        let g = generators::complete(20).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let coarse = Mc::new(&ctx, ApproxConfig::with_epsilon(0.5));
        let fine = Mc::new(&ctx, ApproxConfig::with_epsilon(0.05));
        assert!(fine.trials_for_degree(10) > 50 * coarse.trials_for_degree(10));
        assert!(coarse.trials_for_degree(20) == 2 * coarse.trials_for_degree(10));
    }

    #[test]
    fn mc_is_accurate_on_edge_of_dense_graph() {
        let g = generators::complete(12).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let exact = LaplacianSolver::for_ground_truth(&g).effective_resistance(0, 1);
        let mut mc = Mc::new(&ctx, ApproxConfig::with_epsilon(0.1).reseeded(3));
        let est = mc.estimate(0, 1).unwrap();
        assert!(
            (est.value - exact).abs() <= 0.1,
            "mc {} vs exact {exact}",
            est.value
        );
        assert!(est.cost.random_walks > 0);
        assert!(est.cost.walk_steps >= est.cost.random_walks);
    }

    #[test]
    fn mc_respects_walk_budget_and_self_query() {
        let g = generators::social_network_like(200, 8.0, 6).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut mc = Mc::new(&ctx, ApproxConfig::with_epsilon(0.02)).with_walk_budget(50);
        let est = mc.estimate(0, 100).unwrap();
        assert!(est.cost.random_walks <= 50);
        assert_eq!(mc.estimate(7, 7).unwrap().value, 0.0);
    }

    #[test]
    fn zero_hits_falls_back_to_gamma() {
        // On a long lollipop tail with a tiny budget the walk may never escape;
        // the estimator must not divide by zero.
        let g = generators::lollipop(30, 40).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut mc = Mc::new(&ctx, ApproxConfig::with_epsilon(0.5).reseeded(1))
            .with_gamma(5.0)
            .with_walk_budget(2);
        let est = mc.estimate(0, 69).unwrap();
        assert!(est.value <= 5.0 + 1e-12);
        assert!(est.value.is_finite());
    }
}
