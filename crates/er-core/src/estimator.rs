//! The common estimator interface and cost accounting.

use crate::error::EstimatorError;
use er_graph::NodeId;
use std::ops::AddAssign;

/// Work performed while answering a query, broken down by primitive.
///
/// The paper compares methods by wall-clock time; the cost breakdown makes the
/// *reason* for those differences visible (e.g. GEER trading SpMV operations
/// against random-walk steps at the switch point of Eq. 17) and lets tests
/// assert structural properties ("GEER performs at most as many walks as AMC")
/// without depending on timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Number of random walks simulated.
    pub random_walks: u64,
    /// Total random-walk steps taken.
    pub walk_steps: u64,
    /// Scalar multiply–add operations performed inside sparse matrix–vector
    /// products (one per traversed edge endpoint).
    pub matvec_ops: u64,
    /// Conjugate-gradient (or other solver) iterations.
    pub solver_iterations: u64,
    /// Uniform spanning trees sampled (HAY only).
    pub spanning_trees: u64,
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.random_walks += rhs.random_walks;
        self.walk_steps += rhs.walk_steps;
        self.matvec_ops += rhs.matvec_ops;
        self.solver_iterations += rhs.solver_iterations;
        self.spanning_trees += rhs.spanning_trees;
    }
}

impl CostBreakdown {
    /// A rough single-number cost proxy (every primitive counted once).
    pub fn total_operations(&self) -> u64 {
        self.walk_steps + self.matvec_ops + self.solver_iterations + self.spanning_trees
    }
}

/// An answered ε-approximate PER query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The estimated effective resistance `r'(s, t)`.
    pub value: f64,
    /// Work performed to produce it.
    pub cost: CostBreakdown,
}

impl Estimate {
    /// Convenience constructor for estimators with zero bookkeeping.
    pub fn with_value(value: f64) -> Self {
        Estimate {
            value,
            cost: CostBreakdown::default(),
        }
    }
}

/// A pairwise effective-resistance estimator.
///
/// Implementations take `&mut self` because the randomized estimators carry
/// their RNG state (and some cache per-graph preprocessing), but answering a
/// query never mutates the graph.
pub trait ResistanceEstimator {
    /// Short, stable name used in benchmark tables ("GEER", "AMC", "SMM", …).
    fn name(&self) -> &'static str;

    /// Answers a single ε-approximate PER query for the node pair `(s, t)`.
    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError>;

    /// Answers a batch of queries, stopping early if any query fails.
    fn estimate_many(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<Estimate>, EstimatorError> {
        pairs.iter().map(|&(s, t)| self.estimate(s, t)).collect()
    }
}

/// Estimators that can produce independent per-stream copies for parallel
/// query fan-out.
///
/// `fork(stream)` returns an estimator whose RNG state is re-derived from the
/// configured seed and `stream`, so a batch executor can hand query `i` the
/// fork with `stream = i` and obtain results that are deterministic for a
/// fixed seed at any thread count (and independent of the order in which the
/// queries run). Deterministic estimators simply clone themselves.
///
/// Since the `GraphContext` refactor every estimator is owned (`'static`) and
/// holds the graph behind an `Arc`, so forks are cheap and `Send`.
pub trait ForkableEstimator: ResistanceEstimator + Clone + Send + Sync {
    /// Returns an independent copy on RNG stream `stream`.
    fn fork(&self, stream: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl ResistanceEstimator for Fixed {
        fn name(&self) -> &'static str {
            "FIXED"
        }
        fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
            if s == t {
                Ok(Estimate::with_value(0.0))
            } else {
                Ok(Estimate::with_value(self.0))
            }
        }
    }

    #[test]
    fn cost_breakdown_accumulates() {
        let mut a = CostBreakdown {
            random_walks: 1,
            walk_steps: 10,
            matvec_ops: 5,
            solver_iterations: 0,
            spanning_trees: 2,
        };
        let b = CostBreakdown {
            random_walks: 2,
            walk_steps: 20,
            matvec_ops: 1,
            solver_iterations: 7,
            spanning_trees: 0,
        };
        a += b;
        assert_eq!(a.random_walks, 3);
        assert_eq!(a.walk_steps, 30);
        assert_eq!(a.total_operations(), 30 + 6 + 7 + 2);
    }

    #[test]
    fn estimate_many_uses_estimate() {
        let mut f = Fixed(0.25);
        let out = f.estimate_many(&[(0, 1), (2, 2), (3, 4)]).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 0.25);
        assert_eq!(out[1].value, 0.0);
        assert_eq!(f.name(), "FIXED");
    }
}
