//! AMC — the Adaptive Monte Carlo estimator (Algorithm 1 of the paper).
//!
//! AMC estimates the tail quantity
//! `q(s, t) = Σ_{i=1}^{ℓ_f} Σ_v (p_i(s, v) − p_i(t, v)) (s(v)/d(s) − t(v)/d(t))`
//! (Eq. 12) by simulating pairs of length-`ℓ_f` random walks from `s` and `t`
//! in geometrically growing batches. Each batch re-estimates the empirical
//! mean and variance; sampling stops as soon as the empirical Bernstein bound
//! (Lemma 3.2) certifies an ε/2 error, or after τ batches, at which point the
//! Hoeffding-derived worst case η* (Eq. 8) has been reached.
//!
//! With `s = e_s`, `t = e_t` and `ℓ_f` set to the refined length of Eq. (6),
//! `q(s, t) + 1_{s≠t}(1/d(s) + 1/d(t))` is an ε-approximation of `r(s, t)`
//! with probability ≥ 1 − δ (Theorem 3.4). GEER instead passes the SMM
//! frontier vectors, whose much smaller `max1`/`max2` values shrink ψ and
//! hence the walk budget — the effect Section 4.1.2 calls a "≥ 96% reduction".

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use crate::length;
use er_graph::{Graph, NodeId};
use er_linalg::vector;
use er_walks::{par, WalkKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one AMC run (Algorithm 1's inputs besides the graph, the
/// query pair and the weight vectors).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmcParameters {
    /// Additive error threshold ε; the run targets an ε/2-accurate estimate
    /// of `q(s, t)`.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Maximum number of sampling batches τ.
    pub tau: usize,
    /// Maximum random-walk length ℓ_f.
    pub ell_f: usize,
    /// Optional cap on the total number of walks; when the next batch would
    /// exceed it the run stops with [`AmcOutput::budget_truncated`] set. Used
    /// by the benchmark harness to mirror the paper's one-day-per-method
    /// timeout without aborting mid-query.
    pub walk_budget: Option<u64>,
    /// Worker threads for the walk-pair fan-out (0 = all cores). The estimate
    /// is bit-identical at any thread count for a fixed seed.
    pub threads: usize,
}

impl AmcParameters {
    /// Builds parameters from a shared [`ApproxConfig`] and a walk length.
    pub fn from_config(config: &ApproxConfig, ell_f: usize) -> Self {
        AmcParameters {
            epsilon: config.epsilon,
            delta: config.delta,
            tau: config.tau.max(1),
            ell_f,
            walk_budget: None,
            threads: config.threads,
        }
    }
}

/// Output of one AMC run.
#[derive(Clone, Debug)]
pub struct AmcOutput {
    /// The estimate `r_f(s, t)` of `q(s, t)`.
    pub r_f: f64,
    /// Batches executed (1..=τ).
    pub batches_used: usize,
    /// Whether the empirical Bernstein condition triggered early termination
    /// (as opposed to exhausting all τ batches).
    pub terminated_early: bool,
    /// Whether the optional walk budget cut the run short.
    pub budget_truncated: bool,
    /// Empirical variance of the final batch.
    pub empirical_variance: f64,
    /// The worst-case walk count η* of Eq. (8).
    pub eta_star: u64,
    /// Work performed.
    pub cost: CostBreakdown,
}

/// ψ of Eq. (9): an upper bound on `2 |Z_k|` for the walk-pair random variable
/// `Z_k` of Eq. (11), derived from Lemma 3.3.
pub fn psi_bound(
    s_vec: &[f64],
    t_vec: &[f64],
    degree_s: usize,
    degree_t: usize,
    ell_f: usize,
) -> f64 {
    psi_bound_from_extrema(
        vector::max1(s_vec),
        vector::max2(s_vec),
        vector::max1(t_vec),
        vector::max2(t_vec),
        s_vec.len(),
        degree_s,
        degree_t,
        ell_f,
    )
}

/// [`psi_bound`] evaluated from precomputed per-vector extrema
/// (`max1`/`max2` of each weight vector) instead of the vectors themselves.
///
/// The two-argmax values of a weight vector depend only on that vector, so a
/// batched caller sharing one SMM frontier across many pairs can compute the
/// extrema once per source per iteration and still reproduce `psi_bound`
/// bit for bit: this function performs the identical floating-point
/// operations in the identical order. `len` is the length the weight vectors
/// would have (the `max2` term is defined only for vectors of length ≥ 2).
#[allow(clippy::too_many_arguments)]
pub fn psi_bound_from_extrema(
    max1_s: f64,
    max2_s: f64,
    max1_t: f64,
    max2_t: f64,
    len: usize,
    degree_s: usize,
    degree_t: usize,
    ell_f: usize,
) -> f64 {
    if ell_f == 0 {
        return 0.0;
    }
    let ds = degree_s as f64;
    let dt = degree_t as f64;
    let half_up = ell_f.div_ceil(2) as f64;
    let half_down = (ell_f / 2) as f64;
    let m1 = max1_s / ds + max1_t / dt;
    let m2 = if len >= 2 {
        max2_s / ds + max2_t / dt
    } else {
        0.0
    };
    2.0 * half_up * m1 + 2.0 * half_down * m2
}

/// η* of Eq. (8): the Hoeffding-derived worst-case number of walk pairs,
/// `η* = 2 ψ² ln(2τ/δ) / ε²`.
pub fn eta_star(psi: f64, epsilon: f64, delta: f64, tau: usize) -> u64 {
    let raw = 2.0 * psi * psi * (2.0 * tau as f64 / delta).ln() / (epsilon * epsilon);
    raw.ceil().max(1.0).min(u64::MAX as f64) as u64
}

/// The empirical Bernstein error bound `f(n_z, σ̂², ψ, δ)` of Lemma 3.2 (Eq. 7):
/// `√(2 σ̂² ln(3/δ) / n_z) + 3 ψ ln(3/δ) / n_z`.
pub fn empirical_bernstein_error(n_z: u64, sigma_sq: f64, psi: f64, delta: f64) -> f64 {
    let n = n_z as f64;
    let log_term = (3.0 / delta).ln();
    (2.0 * sigma_sq * log_term / n).sqrt() + 3.0 * psi * log_term / n
}

/// Total walk-pair budget `h(ℓ_f) = Σ_{i=1}^{τ} 2^{i−1} η = (2^τ − 1) ⌈η*/2^{τ−1}⌉`
/// that Algorithm 1 can spend across all batches (Section 3.3.2). GEER's
/// switch rule (Eq. 17) compares the next SpMV cost against the
/// *step-denominated* form of this quantity, [`total_walk_step_budget`].
pub fn total_walk_budget(eta_star: u64, tau: usize) -> u64 {
    let tau = tau.max(1) as u32;
    let first_batch = eta_star.div_ceil(1u64 << (tau - 1)).max(1);
    ((1u64 << tau) - 1).saturating_mul(first_batch)
}

/// The Eq. (17) Monte Carlo side in walk *steps*: each of the
/// [`total_walk_budget`] pairs runs two length-`ℓ_f` walks, so the tail
/// costs `2 ℓ_f · h(ℓ_f)` row loads — the same unit as the SpMV side's
/// `Σ_{v ∈ supp} d(v)` operation count. Comparing pairs against operations
/// (as this repo did before the recalibration) undercounted the walk side
/// by a factor of `2 ℓ_f`, stopping SMM long before the walks it avoided
/// had been paid for; with honest units SMM runs deeper and every AMC tail
/// shrinks.
pub fn total_walk_step_budget(eta_star: u64, tau: usize, ell_f: usize) -> u64 {
    total_walk_budget(eta_star, tau).saturating_mul(2 * ell_f.max(1) as u64)
}

/// Runs Algorithm 1 for the pair `(s, t)` with weight vectors `s_vec`, `t_vec`.
///
/// For a standalone ε-approximate PER query pass `s_vec = e_s`, `t_vec = e_t`
/// and add `1_{s≠t}(1/d(s) + 1/d(t))` to the returned `r_f` (Theorem 3.4);
/// the [`Amc`] estimator does exactly that. GEER passes the SMM frontier
/// vectors instead and adds its own deterministic prefix.
///
/// Each batch draws one `u64` from `rng` to seed the parallel walk-pair
/// fan-out; walk pair `k` then uses its own RNG stream derived from
/// `(batch_seed, k)`, so the result is a pure function of the caller's RNG
/// state regardless of `params.threads`.
pub fn run_amc<R: Rng + ?Sized>(
    graph: &Graph,
    s: NodeId,
    t: NodeId,
    s_vec: &[f64],
    t_vec: &[f64],
    params: &AmcParameters,
    rng: &mut R,
) -> AmcOutput {
    let ds = graph.degree(s) as f64;
    let dt = graph.degree(t) as f64;
    let psi = psi_bound(s_vec, t_vec, graph.degree(s), graph.degree(t), params.ell_f);
    let mut cost = CostBreakdown::default();

    // A zero walk length (or a zero ψ, meaning both weight vectors vanish)
    // makes the tail identically zero — nothing to sample.
    if params.ell_f == 0 || psi == 0.0 {
        return AmcOutput {
            r_f: 0.0,
            batches_used: 0,
            terminated_early: true,
            budget_truncated: false,
            empirical_variance: 0.0,
            eta_star: 0,
            cost,
        };
    }

    let eta_max = eta_star(psi, params.epsilon, params.delta, params.tau);
    let tau = params.tau.max(1);
    let mut eta = eta_max.div_ceil(1u64 << (tau as u32 - 1)).max(1);

    let mut z_mean = 0.0;
    let mut sigma_sq = 0.0;
    let mut batches_used = 0;
    let mut terminated_early = false;
    let mut budget_truncated = false;

    for _ in 0..tau {
        if let Some(budget) = params.walk_budget {
            if cost.random_walks.saturating_add(eta.saturating_mul(2)) > budget {
                budget_truncated = true;
                break;
            }
        }
        batches_used += 1;
        let batch_seed = rng.next_u64();
        // The walk-pair loop runs on the kernel's paired lockstep driver:
        // pair k's stream RNG is built from (batch_seed, k) and both walks
        // of the pair draw from it in the original order (s-walk first),
        // while the s-walks (then t-walks) of a whole lane block advance
        // together so their cache misses overlap. Per-pair float
        // accumulation order and the index-ordered fold are unchanged, so
        // the port preserved AMC's golden values bit for bit (pinned by
        // tests/determinism.rs).
        let kernel = WalkKernel::new(graph);
        let (z_sum, z_sq_sum) = par::par_fold_ranges(
            eta,
            params.threads,
            || (0.0f64, 0.0f64),
            |range, acc: &mut (f64, f64)| {
                kernel.batch_pairs(
                    s,
                    t,
                    params.ell_f,
                    batch_seed,
                    range,
                    &|u: er_graph::NodeId, z_k: &mut f64| {
                        *z_k += s_vec[u] / ds - t_vec[u] / dt;
                    },
                    &|u: er_graph::NodeId, z_k: &mut f64| {
                        *z_k += t_vec[u] / dt - s_vec[u] / ds;
                    },
                    &mut |_, z_k, _steps| {
                        acc.0 += z_k;
                        acc.1 += z_k * z_k;
                    },
                );
            },
            |total, part| {
                total.0 += part.0;
                total.1 += part.1;
            },
        );
        cost.random_walks += 2 * eta;
        cost.walk_steps = cost
            .walk_steps
            .saturating_add(eta.saturating_mul(2 * params.ell_f as u64));
        z_mean = z_sum / eta as f64;
        sigma_sq = (z_sq_sum / eta as f64 - z_mean * z_mean).max(0.0);
        let err = empirical_bernstein_error(eta, sigma_sq, psi, params.delta / tau as f64);
        if err <= params.epsilon / 2.0 {
            terminated_early = true;
            break;
        }
        eta = eta.saturating_mul(2);
    }

    AmcOutput {
        r_f: z_mean,
        batches_used,
        terminated_early,
        budget_truncated,
        empirical_variance: sigma_sq,
        eta_star: eta_max,
        cost,
    }
}

/// The standalone AMC estimator: refined walk length (Eq. 6), one-hot weight
/// vectors and the `1_{s≠t}(1/d(s) + 1/d(t))` correction of Theorem 3.4.
#[derive(Clone)]
pub struct Amc {
    context: GraphContext,
    config: ApproxConfig,
    rng: StdRng,
    walk_budget: Option<u64>,
}

impl Amc {
    /// Creates an AMC estimator (the context is cloned — a cheap `Arc` bump).
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        Amc {
            context: context.clone(),
            config,
            rng: StdRng::seed_from_u64(config.seed),
            walk_budget: None,
        }
    }

    /// Sets an optional per-query walk budget (see [`AmcParameters::walk_budget`]).
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.walk_budget = Some(budget);
        self
    }

    /// The refined maximum walk length this estimator will use for `(s, t)`.
    pub fn walk_length_for(&self, s: NodeId, t: NodeId) -> usize {
        let g = self.context.graph();
        length::refined_length(
            self.config.epsilon,
            self.context.lambda(),
            g.degree(s),
            g.degree(t),
        )
    }
}

impl crate::estimator::ForkableEstimator for Amc {
    fn fork(&self, stream: u64) -> Self {
        let mut fork = self.clone();
        fork.rng = StdRng::seed_from_u64(er_walks::par::mix_seed(self.config.seed, stream));
        fork
    }
}

impl ResistanceEstimator for Amc {
    fn name(&self) -> &'static str {
        "AMC"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        let g = self.context.graph();
        let ell_f = self.walk_length_for(s, t);
        let n = g.num_nodes();
        let s_vec = vector::unit(n, s);
        let t_vec = vector::unit(n, t);
        let mut params = AmcParameters::from_config(&self.config, ell_f);
        params.walk_budget = self.walk_budget;
        let out = run_amc(g, s, t, &s_vec, &t_vec, &params, &mut self.rng);
        if out.budget_truncated && out.batches_used == 0 {
            // Not even the smallest batch fit in the walk budget: reporting the
            // bare degree correction would silently be meaningless, so surface
            // the exhaustion instead (the harness records it as an exclusion,
            // like the paper's timed-out methods).
            return Err(EstimatorError::BudgetExceeded {
                resource: "random walks",
                message: format!(
                    "AMC needs at least {} walk pairs per batch for ({s}, {t}) but the budget is {}",
                    out.eta_star.div_ceil(1u64 << (self.config.tau.max(1) as u32 - 1)),
                    self.walk_budget.unwrap_or(0)
                ),
            });
        }
        let correction = 1.0 / g.degree(s) as f64 + 1.0 / g.degree(t) as f64;
        Ok(Estimate {
            value: out.r_f + correction,
            cost: out.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn psi_matches_hand_computation() {
        // s_vec = e_0, t_vec = e_1, degrees 2 and 4, ell_f = 5:
        // psi = 2*ceil(5/2)*(1/2 + 1/4) + 2*floor(5/2)*(0 + 0) = 2*3*0.75 = 4.5
        let s_vec = vector::unit(6, 0);
        let t_vec = vector::unit(6, 1);
        let psi = psi_bound(&s_vec, &t_vec, 2, 4, 5);
        assert!((psi - 4.5).abs() < 1e-12);
        assert_eq!(psi_bound(&s_vec, &t_vec, 2, 4, 0), 0.0);
    }

    #[test]
    fn eta_star_matches_formula_and_monotonicity() {
        let e1 = eta_star(2.0, 0.5, 0.1, 5);
        // 2 * 4 * ln(100) / 0.25 = 32 ln(100) ≈ 147.4 -> 148
        assert_eq!(e1, (8.0 * (100.0f64).ln() / 0.25).ceil() as u64);
        assert!(
            eta_star(2.0, 0.1, 0.1, 5) > e1,
            "smaller epsilon needs more walks"
        );
        assert!(
            eta_star(4.0, 0.5, 0.1, 5) > e1,
            "larger psi needs more walks"
        );
    }

    #[test]
    fn bernstein_error_shrinks_with_samples_and_variance() {
        let base = empirical_bernstein_error(100, 0.5, 2.0, 0.01);
        assert!(empirical_bernstein_error(10_000, 0.5, 2.0, 0.01) < base);
        assert!(empirical_bernstein_error(100, 0.01, 2.0, 0.01) < base);
        assert!(empirical_bernstein_error(100, 0.5, 0.1, 0.01) < base);
    }

    #[test]
    fn total_walk_budget_is_about_twice_eta_star() {
        let eta = 1000;
        let budget = total_walk_budget(eta, 5);
        assert!(budget >= eta && budget <= 2 * eta + 64, "budget {budget}");
        // tau = 1 degenerates to a single batch of eta* walks
        assert_eq!(total_walk_budget(eta, 1), eta);
    }

    #[test]
    fn amc_is_epsilon_accurate_on_small_graphs() {
        let g = generators::social_network_like(300, 14.0, 11).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        let eps = 0.25;
        let mut amc = Amc::new(&ctx, ApproxConfig::with_epsilon(eps).reseeded(1));
        for &(s, t) in &[(0usize, 100usize), (5, 250), (42, 43)] {
            let est = amc.estimate(s, t).unwrap();
            let exact = solver.effective_resistance(s, t);
            assert!(
                (est.value - exact).abs() <= eps,
                "({s},{t}): amc {} vs exact {exact}",
                est.value
            );
        }
        // Forcing a pessimistic lambda makes the refined length strictly
        // positive, so AMC actually simulates walks and still meets epsilon.
        let slow_ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
        let mut amc = Amc::new(&slow_ctx, ApproxConfig::with_epsilon(eps).reseeded(2));
        let est = amc.estimate(0, 100).unwrap();
        let exact = solver.effective_resistance(0, 100);
        assert!(est.cost.random_walks > 0);
        assert!((est.value - exact).abs() <= eps);
    }

    #[test]
    fn amc_zero_for_identical_nodes_and_valid_cost() {
        let g = generators::complete(10).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut amc = Amc::new(&ctx, ApproxConfig::with_epsilon(0.5));
        let est = amc.estimate(4, 4).unwrap();
        assert_eq!(est.value, 0.0);
        assert_eq!(est.cost.random_walks, 0);
    }

    #[test]
    fn adaptive_scheme_uses_fewer_walks_than_worst_case() {
        // The empirical variance of Z_k with one-hot weight vectors is far
        // below the worst case ψ²/4 assumed by Hoeffding, so the Bernstein
        // condition should fire before all τ batches are spent.
        let g = generators::social_network_like(300, 12.0, 19).unwrap();
        // A pessimistic lambda forces a sizable walk length so the adaptive
        // batching actually has room to terminate early.
        let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
        let g_ref = ctx.graph();
        let (s, t) = (0, 150);
        let ell = length::refined_length(0.1, ctx.lambda(), g_ref.degree(s), g_ref.degree(t));
        let params = AmcParameters {
            epsilon: 0.1,
            delta: 0.01,
            tau: 5,
            ell_f: ell.max(1),
            walk_budget: None,
            threads: 1,
        };
        let n = g_ref.num_nodes();
        let s_vec = vector::unit(n, s);
        let t_vec = vector::unit(n, t);
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_amc(g_ref, s, t, &s_vec, &t_vec, &params, &mut rng);
        assert!(out.terminated_early, "should stop before the last batch");
        let pairs_used = out.cost.random_walks / 2;
        let worst_case = total_walk_budget(out.eta_star, 5);
        assert!(
            pairs_used < worst_case,
            "pairs {pairs_used} should be below the worst-case budget {worst_case}"
        );
    }

    #[test]
    fn walk_budget_truncation_is_reported() {
        // A pessimistic lambda forces a long walk length and hence a large
        // first batch; a tiny budget cannot even cover it, and the estimator
        // reports the exhaustion instead of returning a meaningless value.
        let g = generators::social_network_like(200, 6.0, 2).unwrap();
        let ctx = GraphContext::with_lambda(&g, 0.95).unwrap();
        let mut amc = Amc::new(&ctx, ApproxConfig::with_epsilon(0.05)).with_walk_budget(10);
        match amc.estimate(0, 100) {
            Err(EstimatorError::BudgetExceeded { resource, .. }) => {
                assert_eq!(resource, "random walks")
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // With a budget that covers at least one batch the estimate returns
        // normally and respects the cap.
        let mut amc = Amc::new(&ctx, ApproxConfig::with_epsilon(0.3)).with_walk_budget(2_000_000);
        let est = amc.estimate(0, 100).unwrap();
        assert!(est.cost.random_walks <= 2_000_000);
    }

    #[test]
    fn unbiasedness_of_zk_estimator() {
        // With one-hot weight vectors E[r_f] = q(s, t) = r_l(s,t) - (1/d(s) + 1/d(t)).
        // Check by averaging many independent AMC runs on the triangle, where
        // r(0, 1) = 2/3 and the truncated tail converges quickly.
        let g = generators::complete(3).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        let exact = solver.effective_resistance(0, 1);
        let mut total = 0.0;
        let runs = 30;
        for seed in 0..runs {
            let mut amc = Amc::new(&ctx, ApproxConfig::with_epsilon(0.1).reseeded(seed));
            total += amc.estimate(0, 1).unwrap().value;
        }
        let mean = total / runs as f64;
        assert!((mean - exact).abs() < 0.05, "mean {mean} vs exact {exact}");
    }
}
