//! Batch-native GEER: one SMM frontier per *source*, shared by every pair
//! that touches it.
//!
//! Solo GEER (Algorithm 3, [`crate::Geer`]) pays two SMM power-iteration
//! sequences per pair — one from each endpoint — even when a batch contains
//! many pairs sharing an endpoint. But the frontier sequence
//! `e_u, P e_u, P² e_u, …` of an endpoint `u` is a pure function of the graph
//! and `u`: it does not depend on the partner node, on ε, or on anything
//! per-pair. [`GeerBatch`] exploits that by advancing one frontier lane per
//! distinct endpoint, in lockstep rounds, and letting every pair read the
//! lanes of its two endpoints.
//!
//! Per round `i` each unresolved pair
//!
//! 1. accumulates the series term of Eq. (4) from its two lanes (the same
//!    floating-point expression, in the same order, as
//!    [`smm::run_smm_until`]), and
//! 2. evaluates its private Eq. (17) switch rule from per-lane summaries:
//!    the next SpMV cost splits as [`smm::support_cost`] per lane (integer,
//!    exact) and ψ of Eq. (9) depends on the lanes only through their
//!    `max1`/`max2` extrema ([`amc::psi_bound_from_extrema`]).
//!
//! A pair that stops (or reaches its per-pair refined length ℓ) snapshots its
//! two lane vectors and later runs its AMC tail on an RNG forked from its
//! *pair-content-derived stream* — the identical seed derivation as
//! [`crate::Geer`]`::fork(stream)` followed by `estimate`. Every response is
//! therefore **bit-identical to its solo execution**; only the shared SMM
//! work (reported once in [`GeerBatchRun::shared_cost`]) shrinks, by roughly
//! ×(pairs per shared endpoint).

use crate::amc::{self, AmcParameters};
use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::CostBreakdown;
use crate::length;
use crate::smm;
use er_graph::{Graph, NodeId};
use er_linalg::vector;
use er_walks::par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Result of one batched GEER run over a slice of pairs.
#[derive(Clone, Debug)]
pub struct GeerBatchRun {
    /// `values[i]` is the GEER estimate for `pairs[i]`, bit-identical to the
    /// value a solo [`crate::Geer`] fork on the same stream would return.
    pub values: Vec<f64>,
    /// Per-pair *private* cost: the AMC tail of `pairs[i]` (walks and walk
    /// steps). The SMM prefix is shared and deliberately not attributed here.
    pub item_costs: Vec<CostBreakdown>,
    /// The shared SMM cost, counted **once** per frontier advance regardless
    /// of how many pairs read the frontier. `shared_cost + Σ item_costs` is
    /// the total work of the batch; for a single-pair batch it equals the
    /// solo estimator's cost exactly.
    pub shared_cost: CostBreakdown,
    /// Distinct endpoints whose frontier lane was expanded.
    pub sources_expanded: u64,
    /// Total frontier advances (one per lane per lockstep round) — the
    /// shared-SMM iteration count the solo path would have multiplied by the
    /// pairs sharing each lane.
    pub frontier_advances: u64,
}

/// One per-endpoint frontier lane: the current iterate of `P^i e_node`, the
/// summaries the per-pair switch rule reads, and the snapshot cache handed to
/// resolving pairs.
struct Lane {
    vec: Vec<f64>,
    scratch: Vec<f64>,
    /// `Σ_{v ∈ supp(vec)} d(v)` — this lane's half of the Eq. (17) SpMV cost.
    step_cost: u64,
    max1: f64,
    max2: f64,
    /// Unresolved pair occurrences reading this lane; the lane stops
    /// advancing when it drops to zero.
    pending: usize,
    /// Ops of the most recent advance (summed into the shared cost in lane
    /// order after each parallel round).
    last_ops: u64,
    snap_round: usize,
    snap: Option<Arc<Vec<f64>>>,
}

impl Lane {
    fn new(graph: &Graph, node: NodeId) -> Lane {
        let n = graph.num_nodes();
        let mut vec = vec![0.0; n];
        vec[node] = 1.0;
        let mut lane = Lane {
            vec,
            scratch: vec![0.0; n],
            step_cost: 0,
            max1: 0.0,
            max2: 0.0,
            pending: 0,
            last_ops: 0,
            snap_round: usize::MAX,
            snap: None,
        };
        lane.refresh_summary(graph);
        lane
    }

    /// Recomputes the switch-rule summaries with the *same* `max1`/`max2`
    /// reductions [`amc::psi_bound`] applies to full vectors, so the batched
    /// ψ reproduces the solo float bits.
    fn refresh_summary(&mut self, graph: &Graph) {
        self.step_cost = smm::support_cost(graph, &self.vec);
        self.max1 = vector::max1(&self.vec);
        self.max2 = vector::max2(&self.vec);
    }

    /// One lockstep advance `vec ← P vec` (identical to the solo SMM loop's
    /// [`smm::transition_step`] on this endpoint's vector).
    fn advance(&mut self, graph: &Graph) {
        self.last_ops = smm::transition_step(graph, &self.vec, &mut self.scratch);
        std::mem::swap(&mut self.vec, &mut self.scratch);
        self.refresh_summary(graph);
        self.snap_round = usize::MAX;
        self.snap = None;
    }

    /// The frontier at the current round as a shared snapshot; pairs
    /// resolving at the same round on this lane clone one `Arc`.
    fn snapshot(&mut self, round: usize) -> Arc<Vec<f64>> {
        if self.snap_round != round || self.snap.is_none() {
            self.snap = Some(Arc::new(self.vec.clone()));
            self.snap_round = round;
        }
        self.snap.clone().expect("snapshot populated above")
    }
}

/// A pair still iterating in the lockstep loop.
struct ActivePair {
    /// Index into the caller's `pairs` slice.
    idx: usize,
    s: NodeId,
    t: NodeId,
    si: usize,
    ti: usize,
    ell: usize,
    r_b: f64,
}

/// A pair whose switch point is fixed; its AMC tail still has to run.
struct ResolvedPair {
    idx: usize,
    s: NodeId,
    t: NodeId,
    stream: u64,
    r_b: f64,
    ell_f: usize,
    s_vec: Arc<Vec<f64>>,
    t_vec: Arc<Vec<f64>>,
}

/// The batched GEER driver. See the module docs for the algorithm; the
/// contract is that `run(pairs, streams, …).values[i]` carries exactly the
/// bits of `Geer::new(ctx, config).fork(streams[i]).estimate(pairs[i])`.
#[derive(Clone)]
pub struct GeerBatch {
    context: GraphContext,
    config: ApproxConfig,
    walk_budget: Option<u64>,
}

impl GeerBatch {
    /// Creates a batched driver with the greedy switch rule of Eq. (17).
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        GeerBatch {
            context: context.clone(),
            config,
            walk_budget: None,
        }
    }

    /// Sets an optional per-pair walk budget forwarded to each AMC tail
    /// (mirrors [`crate::Geer::with_walk_budget`]).
    #[must_use]
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.walk_budget = Some(budget);
        self
    }

    /// Answers every pair of the batch. `streams[i]` is the RNG stream of
    /// `pairs[i]` (the service derives it from the pair content);
    /// `fanout_threads` drives the cross-pair parallelism (0 = all cores) and
    /// never changes values.
    pub fn run(
        &self,
        pairs: &[(NodeId, NodeId)],
        streams: &[u64],
        fanout_threads: usize,
    ) -> Result<GeerBatchRun, EstimatorError> {
        self.config.validate()?;
        if streams.len() != pairs.len() {
            return Err(EstimatorError::InvalidParameter {
                name: "streams",
                message: format!(
                    "need one RNG stream per pair, got {} streams for {} pairs",
                    streams.len(),
                    pairs.len()
                ),
            });
        }
        for &(s, t) in pairs {
            self.context.check_pair(s, t)?;
        }
        let n = self.context.graph().num_nodes();
        let mut run = GeerBatchRun {
            values: vec![0.0; pairs.len()],
            item_costs: vec![CostBreakdown::default(); pairs.len()],
            shared_cost: CostBreakdown::default(),
            sources_expanded: 0,
            frontier_advances: 0,
        };
        for chunk in plan_chunks(pairs, n) {
            self.run_chunk(&chunk, pairs, streams, fanout_threads, &mut run);
        }
        Ok(run)
    }

    /// The lockstep frontier loop plus the AMC tail fan-out for one chunk of
    /// pair indices. Chunking bounds live frontier memory; it can only change
    /// *sharing* (each value is a pure function of its pair, stream and
    /// config), never values.
    fn run_chunk(
        &self,
        chunk: &[usize],
        pairs: &[(NodeId, NodeId)],
        streams: &[u64],
        fanout_threads: usize,
        out: &mut GeerBatchRun,
    ) {
        let g = self.context.graph();
        let n = g.num_nodes();
        let epsilon = self.config.epsilon;
        let delta = self.config.delta;
        let tau = self.config.tau.max(1);

        let mut lane_of: HashMap<NodeId, usize> = HashMap::new();
        let mut lanes: Vec<Lane> = Vec::new();
        let mut lane_index = |node: NodeId, lanes: &mut Vec<Lane>| -> usize {
            *lane_of.entry(node).or_insert_with(|| {
                lanes.push(Lane::new(g, node));
                lanes.len() - 1
            })
        };
        let mut active: Vec<ActivePair> = Vec::with_capacity(chunk.len());
        for &idx in chunk {
            let (s, t) = pairs[idx];
            debug_assert_ne!(s, t, "trivial pairs are filtered before chunking");
            let si = lane_index(s, &mut lanes);
            let ti = lane_index(t, &mut lanes);
            lanes[si].pending += 1;
            lanes[ti].pending += 1;
            active.push(ActivePair {
                idx,
                s,
                t,
                si,
                ti,
                ell: length::refined_length(
                    epsilon,
                    self.context.lambda(),
                    g.degree(s),
                    g.degree(t),
                ),
                r_b: 0.0,
            });
        }
        out.sources_expanded += lanes.len() as u64;

        let mut resolved: Vec<ResolvedPair> = Vec::with_capacity(active.len());
        let mut round = 0usize;
        while !active.is_empty() {
            let mut still = Vec::with_capacity(active.len());
            for mut p in active.drain(..) {
                // Series term and switch test exactly as the solo loop: the
                // term for round i is accumulated first (run_smm_until adds
                // term 0 at init and one term after each iteration), then the
                // loop condition `i < ℓ && !stop(i, s*, t*)` decides whether
                // iteration i+1 runs.
                let (term, stop) = {
                    let ls = &lanes[p.si];
                    let lt = &lanes[p.ti];
                    let term = smm::series_term(g, p.s, p.t, &ls.vec, &lt.vec);
                    let stop = round >= p.ell || {
                        let spmv_cost = ls.step_cost + lt.step_cost;
                        let psi = amc::psi_bound_from_extrema(
                            ls.max1,
                            ls.max2,
                            lt.max1,
                            lt.max2,
                            n,
                            g.degree(p.s),
                            g.degree(p.t),
                            p.ell - round,
                        );
                        let eta = amc::eta_star(psi, epsilon, delta, tau);
                        // Step-denominated Eq. (17), identical to the solo
                        // switch in `Geer::run` so batching stays bit-exact.
                        spmv_cost > amc::total_walk_step_budget(eta, tau, p.ell - round)
                    };
                    (term, stop)
                };
                p.r_b += term;
                if stop {
                    let s_vec = lanes[p.si].snapshot(round);
                    let t_vec = lanes[p.ti].snapshot(round);
                    lanes[p.si].pending -= 1;
                    lanes[p.ti].pending -= 1;
                    resolved.push(ResolvedPair {
                        idx: p.idx,
                        s: p.s,
                        t: p.t,
                        stream: streams[p.idx],
                        r_b: p.r_b,
                        ell_f: p.ell - round,
                        s_vec,
                        t_vec,
                    });
                } else {
                    still.push(p);
                }
            }
            active = still;
            if active.is_empty() {
                break;
            }
            round += 1;
            out.frontier_advances += self.advance_lanes(&mut lanes, fanout_threads);
            out.shared_cost.matvec_ops += lanes
                .iter()
                .filter(|l| l.pending > 0)
                .map(|l| l.last_ops)
                .sum::<u64>();
        }

        // AMC tails: per-pair forks on the pair-content streams, exactly the
        // seed derivation of `Geer::fork` + `estimate`. The fan-out runs in
        // index order, so costs and values land deterministically.
        let tails = par::par_map_indexed(
            resolved.len() as u64,
            0, // streams come from the resolved pairs, not from this seed
            fanout_threads,
            |k, _| {
                let r = &resolved[k as usize];
                let mut rng =
                    StdRng::seed_from_u64(par::mix_seed(self.config.seed ^ 0x6eee, r.stream));
                let params = AmcParameters {
                    epsilon,
                    delta,
                    tau,
                    ell_f: r.ell_f,
                    walk_budget: self.walk_budget,
                    threads: self.config.threads,
                };
                let amc_out = amc::run_amc(g, r.s, r.t, &r.s_vec, &r.t_vec, &params, &mut rng);
                (r.r_b + amc_out.r_f, amc_out.cost)
            },
        );
        for (r, (value, cost)) in resolved.iter().zip(tails) {
            out.values[r.idx] = value;
            out.item_costs[r.idx] = cost;
        }
    }

    /// Advances every lane that still has pending readers, in parallel over
    /// lanes when it pays. Each lane's new iterate depends only on its own
    /// vector, so the split is value-deterministic; returns the number of
    /// lanes advanced.
    fn advance_lanes(&self, lanes: &mut [Lane], fanout_threads: usize) -> u64 {
        let g = self.context.graph();
        let workers = par::resolve_threads(fanout_threads).max(1);
        let live = lanes.iter().filter(|l| l.pending > 0).count() as u64;
        if workers <= 1 || lanes.len() < 2 {
            for lane in lanes.iter_mut().filter(|l| l.pending > 0) {
                lane.advance(g);
            }
            return live;
        }
        let chunk_size = lanes.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for chunk in lanes.chunks_mut(chunk_size) {
                scope.spawn(move || {
                    for lane in chunk.iter_mut().filter(|l| l.pending > 0) {
                        lane.advance(g);
                    }
                });
            }
        });
        live
    }
}

/// Upper bound on live frontier-sized vectors per chunk (each lane holds two,
/// each resolution snapshots up to two): keeps peak extra memory around
/// 64 MB of `f64`s regardless of graph size.
fn chunk_vector_budget(n: usize) -> usize {
    (8_000_000 / n.max(1)).clamp(16, 2048)
}

/// Groups non-trivial pair indices into memory-bounded chunks, keeping pairs
/// that share their most popular endpoint together so the lockstep loop can
/// actually share lanes. Trivial `s == t` pairs never appear in any chunk
/// (their value is 0 with zero cost, as in the solo estimator).
fn plan_chunks(pairs: &[(NodeId, NodeId)], n: usize) -> Vec<Vec<usize>> {
    let mut frequency: HashMap<NodeId, usize> = HashMap::new();
    for &(s, t) in pairs.iter().filter(|&&(s, t)| s != t) {
        *frequency.entry(s).or_insert(0) += 1;
        *frequency.entry(t).or_insert(0) += 1;
    }
    // Bucket by anchor endpoint (the more frequent one; ties to the smaller
    // id) and visit popular anchors first, so heavily shared endpoints end up
    // co-resident.
    let mut buckets: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (idx, &(s, t)) in pairs.iter().enumerate() {
        if s == t {
            continue;
        }
        let (fs, ft) = (frequency[&s], frequency[&t]);
        let anchor = match fs.cmp(&ft) {
            std::cmp::Ordering::Greater => s,
            std::cmp::Ordering::Less => t,
            std::cmp::Ordering::Equal => s.min(t),
        };
        buckets.entry(anchor).or_default().push(idx);
    }
    let mut order: Vec<(NodeId, Vec<usize>)> = buckets.into_iter().collect();
    order.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));

    let budget = chunk_vector_budget(n);
    let mut chunks: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut current_sources: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for (_, bucket) in order {
        for idx in bucket {
            let (s, t) = pairs[idx];
            current_sources.insert(s);
            current_sources.insert(t);
            current.push(idx);
            if 2 * current_sources.len() + 2 * current.len() >= budget {
                current.sort_unstable();
                chunks.push(std::mem::take(&mut current));
                current_sources.clear();
            }
        }
    }
    if !current.is_empty() {
        current.sort_unstable();
        chunks.push(current);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{ForkableEstimator, ResistanceEstimator};
    use crate::geer::Geer;
    use er_graph::generators;

    fn solo_bits(
        ctx: &GraphContext,
        config: ApproxConfig,
        pairs: &[(NodeId, NodeId)],
        streams: &[u64],
    ) -> (Vec<u64>, Vec<CostBreakdown>) {
        let proto = Geer::new(ctx, config);
        let mut bits = Vec::new();
        let mut costs = Vec::new();
        for (&(s, t), &stream) in pairs.iter().zip(streams) {
            let est = proto.fork(stream).estimate(s, t).unwrap();
            bits.push(est.value.to_bits());
            costs.push(est.cost);
        }
        (bits, costs)
    }

    fn shared_endpoint_pairs() -> Vec<(NodeId, NodeId)> {
        // A hub-heavy batch: endpoint 0 and 7 are shared across many pairs,
        // plus a self-pair, a duplicate and an isolated pair.
        vec![
            (0, 100),
            (0, 150),
            (0, 200),
            (7, 100),
            (7, 250),
            (33, 34),
            (42, 42),
            (0, 100),
            (250, 7),
        ]
    }

    #[test]
    fn batched_values_are_bit_identical_to_solo_forks_at_1_2_8_threads() {
        let g = generators::social_network_like(300, 10.0, 4).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let config = ApproxConfig::with_epsilon(0.2).reseeded(7);
        let pairs = shared_endpoint_pairs();
        let streams: Vec<u64> = (0..pairs.len() as u64)
            .map(|i| i.wrapping_mul(0x9e37))
            .collect();
        let (solo, solo_costs) = solo_bits(&ctx, config, &pairs, &streams);

        let batch = GeerBatch::new(&ctx, config);
        for threads in [1usize, 2, 8] {
            let run = batch.run(&pairs, &streams, threads).unwrap();
            let got: Vec<u64> = run.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, solo, "batched GEER diverged at {threads} threads");
            // Tails are private per pair and must match solo exactly; the SMM
            // prefix is shared, so the batch never does more matvec work than
            // the per-pair sum.
            let solo_walks: u64 = solo_costs.iter().map(|c| c.random_walks).sum();
            let batch_walks: u64 = run.item_costs.iter().map(|c| c.random_walks).sum();
            assert_eq!(batch_walks, solo_walks);
            let solo_matvec: u64 = solo_costs.iter().map(|c| c.matvec_ops).sum();
            assert!(run.shared_cost.matvec_ops <= solo_matvec);
            assert!(run.shared_cost.matvec_ops > 0);
        }
    }

    #[test]
    fn single_pair_batch_reproduces_the_solo_cost_exactly() {
        let g = generators::social_network_like(250, 8.0, 11).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let config = ApproxConfig::with_epsilon(0.1).reseeded(3);
        let est = Geer::new(&ctx, config).fork(99).estimate(5, 180).unwrap();
        let run = GeerBatch::new(&ctx, config)
            .run(&[(5, 180)], &[99], 1)
            .unwrap();
        assert_eq!(run.values[0].to_bits(), est.value.to_bits());
        let mut total = run.shared_cost;
        total += run.item_costs[0];
        assert_eq!(total, est.cost, "shared + item must equal the solo cost");
        assert_eq!(run.sources_expanded, 2);
    }

    #[test]
    fn sharing_reduces_smm_work_on_a_hub_batch() {
        let g = generators::social_network_like(400, 10.0, 9).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let config = ApproxConfig::with_epsilon(0.05).reseeded(5);
        let pairs: Vec<(NodeId, NodeId)> = (1..=20).map(|t| (0, t * 17)).collect();
        let streams: Vec<u64> = (0..pairs.len() as u64).collect();
        let (_, solo_costs) = solo_bits(&ctx, config, &pairs, &streams);
        let run = GeerBatch::new(&ctx, config)
            .run(&pairs, &streams, 0)
            .unwrap();
        let solo_matvec: u64 = solo_costs.iter().map(|c| c.matvec_ops).sum();
        assert!(
            run.shared_cost.matvec_ops * 2 <= solo_matvec,
            "20 pairs on one hub must at least halve the SMM work \
             (shared {} vs solo {solo_matvec})",
            run.shared_cost.matvec_ops
        );
        // 21 distinct endpoints = 21 lanes.
        assert_eq!(run.sources_expanded, 21);
    }

    #[test]
    fn chunking_never_changes_values() {
        let g = generators::social_network_like(200, 8.0, 2).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let config = ApproxConfig::with_epsilon(0.3).reseeded(13);
        let pairs: Vec<(NodeId, NodeId)> = (0..30).map(|i| (i % 5, 50 + i)).collect();
        let streams: Vec<u64> = (0..pairs.len() as u64).map(|i| 1000 + i).collect();
        let whole = GeerBatch::new(&ctx, config)
            .run(&pairs, &streams, 2)
            .unwrap();
        // Tiny per-call batches (degenerate chunking) must agree bit for bit.
        let batch = GeerBatch::new(&ctx, config);
        for (i, &pair) in pairs.iter().enumerate() {
            let one = batch.run(&[pair], &[streams[i]], 1).unwrap();
            assert_eq!(
                one.values[0].to_bits(),
                whole.values[i].to_bits(),
                "pair {i}"
            );
        }
    }

    #[test]
    fn rejects_mismatched_streams_and_bad_nodes() {
        let g = generators::complete(8).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let batch = GeerBatch::new(&ctx, ApproxConfig::default());
        assert!(matches!(
            batch.run(&[(0, 1)], &[], 1),
            Err(EstimatorError::InvalidParameter { .. })
        ));
        assert!(batch.run(&[(0, 99)], &[0], 1).is_err());
        let empty = batch.run(&[], &[], 1).unwrap();
        assert!(empty.values.is_empty());
    }

    #[test]
    fn walk_budget_is_forwarded_to_every_tail() {
        let g = generators::social_network_like(200, 6.0, 2).unwrap();
        let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
        let config = ApproxConfig::with_epsilon(0.2).reseeded(1);
        let pairs = [(0usize, 100usize), (0, 150)];
        let streams = [4u64, 5];
        let est0 = Geer::new(&ctx, config)
            .with_walk_budget(5_000)
            .fork(4)
            .estimate(0, 100)
            .unwrap();
        let run = GeerBatch::new(&ctx, config)
            .with_walk_budget(5_000)
            .run(&pairs, &streams, 1)
            .unwrap();
        assert_eq!(run.values[0].to_bits(), est0.value.to_bits());
        for cost in &run.item_costs {
            assert!(cost.random_walks <= 5_000);
        }
    }
}
