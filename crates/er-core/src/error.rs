//! Error type shared by all estimators.

use er_graph::GraphError;
use std::fmt;

/// Errors produced by the effective-resistance estimators.
#[derive(Debug)]
pub enum EstimatorError {
    /// The underlying graph violated an assumption (disconnected, bipartite,
    /// node id out of range, …).
    Graph(GraphError),
    /// A configuration parameter was invalid (e.g. ε ≤ 0 or δ ∉ (0, 1)).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        message: String,
    },
    /// The estimator is only defined for node pairs joined by an edge
    /// (MC2 and HAY), but the query pair is not an edge.
    NotAnEdge {
        /// Query source.
        s: usize,
        /// Query target.
        t: usize,
    },
    /// The estimator refused to run because it would exceed a resource budget
    /// (mirrors the paper's out-of-memory / one-day-timeout exclusions).
    BudgetExceeded {
        /// Which budget was exceeded.
        resource: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::Graph(e) => write!(f, "graph error: {e}"),
            EstimatorError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter '{name}': {message}")
            }
            EstimatorError::NotAnEdge { s, t } => {
                write!(
                    f,
                    "({s}, {t}) is not an edge; this estimator only supports edge queries"
                )
            }
            EstimatorError::BudgetExceeded { resource, message } => {
                write!(f, "{resource} budget exceeded: {message}")
            }
        }
    }
}

impl std::error::Error for EstimatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimatorError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for EstimatorError {
    fn from(e: GraphError) -> Self {
        EstimatorError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EstimatorError::NotAnEdge { s: 1, t: 2 };
        assert!(e.to_string().contains("not an edge"));
        let e = EstimatorError::InvalidParameter {
            name: "epsilon",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("epsilon"));
        let e = EstimatorError::BudgetExceeded {
            resource: "memory",
            message: "sketch too large".into(),
        };
        assert!(e.to_string().contains("memory"));
        let e: EstimatorError = GraphError::NotConnected.into();
        assert!(e.to_string().contains("connected"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
