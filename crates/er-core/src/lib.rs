//! Pairwise effective-resistance (PER) estimation.
//!
//! This crate implements the algorithms of *"Efficient Estimation of Pairwise
//! Effective Resistance"* (Yang & Tang, SIGMOD 2023):
//!
//! * [`Amc`] — the adaptive Monte Carlo estimator (Algorithm 1) with the
//!   refined per-pair maximum walk length of Theorem 3.1 and
//!   empirical-Bernstein early termination,
//! * [`Geer`] — the greedy hybrid (Algorithm 3) that runs deterministic
//!   sparse matrix–vector iterations ([`Smm`], Algorithm 2) until their cost
//!   would exceed the remaining Monte Carlo budget (Eq. 17), then hands the
//!   frontier vectors to AMC,
//!
//! together with every baseline the paper evaluates against: [`Exact`]
//! (pseudo-inverse of the Laplacian), [`Smm`], [`Mc`], [`Mc2`], [`Tp`],
//! [`Tpc`], [`Rp`] (random projection) and [`Hay`] (spanning-tree sampling).
//!
//! # Quick start
//!
//! ```
//! use er_core::{ApproxConfig, Geer, GraphContext, ResistanceEstimator};
//! use er_graph::generators;
//!
//! let graph = generators::social_network_like(2_000, 12.0, 7).unwrap();
//! let ctx = GraphContext::preprocess(&graph).unwrap();
//! let config = ApproxConfig { epsilon: 0.1, ..ApproxConfig::default() };
//! let mut geer = Geer::new(&ctx, config);
//! let estimate = geer.estimate(0, 42).unwrap();
//! println!("r(0, 42) ≈ {:.4}", estimate.value);
//! ```
//!
//! Every estimator implements [`ResistanceEstimator`], returning both the
//! value and a [`CostBreakdown`] (walks simulated, walk steps, matrix–vector
//! operations, Laplacian solves) so the benchmark harness can report the same
//! quantities the paper plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amc;
pub mod config;
pub mod context;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod geer;
pub mod geer_batch;
pub mod ground_truth;
pub mod hay;
pub mod length;
pub mod mc;
pub mod mc2;
pub mod rp;
pub mod smm;
pub mod tp;
pub mod tpc;

pub use amc::{Amc, AmcOutput, AmcParameters};
pub use config::ApproxConfig;
pub use context::GraphContext;
pub use error::EstimatorError;
pub use estimator::{CostBreakdown, Estimate, ForkableEstimator, ResistanceEstimator};
pub use exact::Exact;
pub use geer::{Geer, GeerTrace, SwitchRule};
pub use geer_batch::{GeerBatch, GeerBatchRun};
pub use ground_truth::{GroundTruth, GroundTruthMethod};
pub use hay::Hay;
pub use length::{peng_length, refined_length};
pub use mc::Mc;
pub use mc2::Mc2;
pub use rp::Rp;
pub use smm::Smm;
pub use tp::Tp;
pub use tpc::Tpc;
