//! Shared configuration for the randomized estimators.

use crate::error::EstimatorError;

/// Parameters of an ε-approximate PER query (Definition 2.2 of the paper)
/// plus the knobs shared by the randomized estimators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxConfig {
    /// Additive error threshold ε (Eq. 2). The paper evaluates
    /// ε ∈ {0.01, 0.02, 0.05, 0.1, 0.2, 0.5}.
    pub epsilon: f64,
    /// Failure probability δ. The paper fixes δ = 0.01 for all randomized
    /// algorithms.
    pub delta: f64,
    /// Maximum number of batches τ of AMC's adaptive sampling scheme
    /// (Section 3.2). The paper uses τ = 5 by default and sweeps 1..=8 in
    /// Figs. 8–9.
    pub tau: usize,
    /// Seed for the estimator's random number generator; estimates are fully
    /// deterministic given the seed — at *any* thread count (see [`Self::threads`]).
    pub seed: u64,
    /// Worker threads for the parallel sampling layer (0 = all cores).
    ///
    /// Sampling fans out with per-walk RNG streams derived from
    /// `(seed, walk_index)`, so for a fixed [`Self::seed`] the estimate is
    /// bit-identical whether this is 1 or 64.
    pub threads: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.1,
            delta: 0.01,
            tau: 5,
            seed: 0x5eed,
            threads: 0,
        }
    }
}

impl ApproxConfig {
    /// Creates a config with the given ε and the paper's defaults elsewhere.
    pub fn with_epsilon(epsilon: f64) -> Self {
        ApproxConfig {
            epsilon,
            ..ApproxConfig::default()
        }
    }

    /// Returns a copy with a different seed (convenient for repeated trials).
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different thread count (0 = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates ε > 0, δ ∈ (0, 1) and τ ≥ 1.
    pub fn validate(&self) -> Result<(), EstimatorError> {
        if self.epsilon <= 0.0 || !self.epsilon.is_finite() {
            return Err(EstimatorError::InvalidParameter {
                name: "epsilon",
                message: format!("must be a positive finite number, got {}", self.epsilon),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(EstimatorError::InvalidParameter {
                name: "delta",
                message: format!("must lie in (0, 1), got {}", self.delta),
            });
        }
        if self.tau == 0 {
            return Err(EstimatorError::InvalidParameter {
                name: "tau",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = ApproxConfig::default();
        assert_eq!(c.delta, 0.01);
        assert_eq!(c.tau, 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_epsilon_and_reseeded() {
        let c = ApproxConfig::with_epsilon(0.02)
            .reseeded(99)
            .with_threads(4);
        assert_eq!(c.epsilon, 0.02);
        assert_eq!(c.seed, 99);
        assert_eq!(c.threads, 4);
        assert_eq!(c.tau, ApproxConfig::default().tau);
        assert_eq!(ApproxConfig::default().threads, 0, "default is all cores");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ApproxConfig::with_epsilon(0.0).validate().is_err());
        assert!(ApproxConfig::with_epsilon(f64::NAN).validate().is_err());
        let mut c = ApproxConfig {
            delta: 1.5,
            ..ApproxConfig::default()
        };
        assert!(c.validate().is_err());
        c.delta = 0.01;
        c.tau = 0;
        assert!(c.validate().is_err());
    }
}
