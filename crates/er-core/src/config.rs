//! Shared configuration for the randomized estimators.

use crate::error::EstimatorError;

/// Parameters of an ε-approximate PER query (Definition 2.2 of the paper)
/// plus the knobs shared by the randomized estimators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxConfig {
    /// Additive error threshold ε (Eq. 2). The paper evaluates
    /// ε ∈ {0.01, 0.02, 0.05, 0.1, 0.2, 0.5}.
    pub epsilon: f64,
    /// Failure probability δ. The paper fixes δ = 0.01 for all randomized
    /// algorithms.
    pub delta: f64,
    /// Maximum number of batches τ of AMC's adaptive sampling scheme
    /// (Section 3.2). The paper uses τ = 5 by default and sweeps 1..=8 in
    /// Figs. 8–9.
    pub tau: usize,
    /// Seed for the estimator's random number generator; estimates are fully
    /// deterministic given the seed.
    pub seed: u64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.1,
            delta: 0.01,
            tau: 5,
            seed: 0x5eed,
        }
    }
}

impl ApproxConfig {
    /// Creates a config with the given ε and the paper's defaults elsewhere.
    pub fn with_epsilon(epsilon: f64) -> Self {
        ApproxConfig {
            epsilon,
            ..ApproxConfig::default()
        }
    }

    /// Returns a copy with a different seed (convenient for repeated trials).
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates ε > 0, δ ∈ (0, 1) and τ ≥ 1.
    pub fn validate(&self) -> Result<(), EstimatorError> {
        if !(self.epsilon > 0.0) || !self.epsilon.is_finite() {
            return Err(EstimatorError::InvalidParameter {
                name: "epsilon",
                message: format!("must be a positive finite number, got {}", self.epsilon),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(EstimatorError::InvalidParameter {
                name: "delta",
                message: format!("must lie in (0, 1), got {}", self.delta),
            });
        }
        if self.tau == 0 {
            return Err(EstimatorError::InvalidParameter {
                name: "tau",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = ApproxConfig::default();
        assert_eq!(c.delta, 0.01);
        assert_eq!(c.tau, 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_epsilon_and_reseeded() {
        let c = ApproxConfig::with_epsilon(0.02).reseeded(99);
        assert_eq!(c.epsilon, 0.02);
        assert_eq!(c.seed, 99);
        assert_eq!(c.tau, ApproxConfig::default().tau);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ApproxConfig::with_epsilon(0.0).validate().is_err());
        assert!(ApproxConfig::with_epsilon(f64::NAN).validate().is_err());
        let mut c = ApproxConfig::default();
        c.delta = 1.5;
        assert!(c.validate().is_err());
        c.delta = 0.01;
        c.tau = 0;
        assert!(c.validate().is_err());
    }
}
