//! TPC — the collision-probability variant of TP (Section 2.3.2 of the paper,
//! from Peng et al. \[49\]).
//!
//! TPC writes `p_i(s, t)` as a collision probability of two independent
//! half-length walks: with `a = ⌈i/2⌉`, `b = ⌊i/2⌋`,
//! `p_i(s, t) = Σ_v p_a(s, v) · p_b(v, t) = Σ_v p_a(s, v) · p_b(t, v) · d(v)/d(t)`
//! (the last step uses reversibility `d(t) p_b(t, v) = d(v) p_b(v, t)`).
//! Sampling η endpoints from each side and counting weighted collisions gives
//! an unbiased estimate with far better variance than TP's direct endpoint
//! matching on well-mixing graphs.
//!
//! The sample-size formula of \[49\] involves a parameter βᵢ that must upper
//! bound `max{Σ_v p_i(s,v)²/d(v), Σ_v p_i(t,v)²/d(v)}` — a quantity that is
//! unknown in practice. The paper's experiments fall back to "heuristic
//! settings"; we do the same and document ours: βᵢ is estimated from a small
//! pilot batch of walks (biased upward by adding the stationary floor
//! `1/(2m)`), with no formal guarantee — exactly the caveat Section 5.1 states
//! for TPC.

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use crate::length;
use er_graph::{Graph, NodeId};
use er_walks::kernel::{self, ScratchPool, WalkKernel};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// Samples `eta` endpoints of length-`len` walks from `origin` into a count
/// multiset — `(node, count)` pairs sorted by node id — plus the steps taken,
/// fanning the walks out deterministically over the zero-allocation walk
/// kernel (walk `k` uses the `(fan_seed, k)` stream; counts merge
/// associatively, so the multiset is thread-count invariant). The pairs are
/// sorted on purpose: the pilot-β and collision estimates fold these counts
/// into floating-point sums, and ordered iteration keeps that rounding a pure
/// function of the seed.
fn sample_endpoints(
    graph: &Graph,
    origin: NodeId,
    len: usize,
    eta: u64,
    fan_seed: u64,
    threads: usize,
    pool: &ScratchPool,
) -> (Vec<(NodeId, u64)>, u64) {
    let walk_kernel = WalkKernel::new(graph);
    kernel::par_tally_sparse(eta, threads, pool, |range, scratch| {
        walk_kernel.batch_endpoints(origin, len, fan_seed, range, &mut |_, end, steps| {
            scratch.bump(end);
            scratch.add_steps(steps);
        });
    })
}

/// The TPC estimator.
#[derive(Clone)]
pub struct Tpc {
    context: GraphContext,
    config: ApproxConfig,
    rng: StdRng,
    sample_scale: f64,
    pilot_walks: u64,
    walk_budget: Option<u64>,
    /// Reusable endpoint-tally scratches, shared across clones and queries.
    scratch: Arc<ScratchPool>,
}

impl Tpc {
    /// Constant in the sample-size formula of \[49\] (`40000 × (…)`).
    pub const SAMPLE_CONSTANT: f64 = 40_000.0;

    /// Creates a TPC estimator with the heuristic βᵢ pilot estimation.
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        let scratch = Arc::new(ScratchPool::new(context.graph().num_nodes()));
        Tpc {
            context: context.clone(),
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x007c),
            sample_scale: 1.0,
            pilot_walks: 200,
            walk_budget: None,
            scratch,
        }
    }

    /// Scales the per-length walk count (the paper's formula is enormous; the
    /// harness documents any scaling it applies).
    pub fn with_sample_scale(mut self, scale: f64) -> Self {
        self.sample_scale = scale.max(0.0);
        self
    }

    /// Caps the total number of walks per query.
    pub fn with_walk_budget(mut self, budget: u64) -> Self {
        self.walk_budget = Some(budget);
        self
    }

    /// Peng et al.'s maximum walk length ℓ for the current ε.
    pub fn max_length(&self) -> usize {
        length::peng_length(self.config.epsilon, self.context.lambda())
    }

    /// Pilot estimate of βᵢ from `pilot_walks` endpoint samples of length
    /// `half` starting at `origin`: `Σ_v (count(v)/η)² / d(v)`, floored at the
    /// stationary value `1/(2m)`.
    fn beta_pilot(
        &mut self,
        graph: &Graph,
        origin: NodeId,
        half: usize,
        cost: &mut CostBreakdown,
    ) -> f64 {
        let eta = self.pilot_walks.max(1);
        let fan_seed = self.rng.next_u64();
        let (counts, steps) = sample_endpoints(
            graph,
            origin,
            half,
            eta,
            fan_seed,
            self.config.threads,
            &self.scratch,
        );
        cost.random_walks += eta;
        cost.walk_steps += steps;
        let mut beta = 0.0;
        for (v, c) in counts {
            let p = c as f64 / eta as f64;
            beta += p * p / graph.degree(v).max(1) as f64;
        }
        beta.max(1.0 / graph.num_directed_edges() as f64)
    }

    /// Walks per side for length `i`, using the formula of \[49\]:
    /// `40000 (ℓ √(ℓ βᵢ) / ε + ℓ³ βᵢ^{3/2} / ε²)`, scaled by `sample_scale`.
    pub fn walks_for_beta(&self, beta: f64) -> u64 {
        let ell = self.max_length().max(1) as f64;
        let eps = self.config.epsilon;
        let raw = Self::SAMPLE_CONSTANT
            * (ell * (ell * beta).sqrt() / eps + ell.powi(3) * beta.powf(1.5) / (eps * eps));
        (raw * self.sample_scale)
            .ceil()
            .max(1.0)
            .min(u64::MAX as f64) as u64
    }
}

impl crate::estimator::ForkableEstimator for Tpc {
    fn fork(&self, stream: u64) -> Self {
        let mut fork = self.clone();
        fork.rng =
            StdRng::seed_from_u64(er_walks::par::mix_seed(self.config.seed ^ 0x007c, stream));
        fork
    }
}

impl ResistanceEstimator for Tpc {
    fn name(&self) -> &'static str {
        "TPC"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        // Hold the graph through a local Arc so `&mut self` stays available
        // for the RNG draws below.
        let graph = self.context.graph_arc().clone();
        let g = &*graph;
        let ds = g.degree(s) as f64;
        let dt = g.degree(t) as f64;
        let ell = self.max_length();
        let mut cost = CostBreakdown::default();
        // i = 0 term.
        let mut value = 1.0 / ds + 1.0 / dt;

        'outer: for i in 1..=ell {
            let a = i.div_ceil(2);
            let b = i / 2;
            let beta_s = self.beta_pilot(g, s, a.max(1), &mut cost);
            let beta_t = self.beta_pilot(g, t, a.max(1), &mut cost);
            let beta = beta_s.max(beta_t);
            let eta = self.walks_for_beta(beta);
            if let Some(budget) = self.walk_budget {
                if cost.random_walks.saturating_add(eta.saturating_mul(4)) > budget {
                    break 'outer;
                }
            }

            // Sample endpoint multisets for the four collision estimates.
            let threads = self.config.threads;
            let pool = Arc::clone(&self.scratch);
            let sample =
                |origin: NodeId, len: usize, rng: &mut StdRng, cost: &mut CostBreakdown| {
                    let fan_seed = rng.next_u64();
                    let (counts, steps) =
                        sample_endpoints(g, origin, len, eta, fan_seed, threads, &pool);
                    cost.random_walks += eta;
                    cost.walk_steps += steps;
                    counts
                };
            let from_s_a = sample(s, a, &mut self.rng, &mut cost);
            let from_s_b = sample(s, b, &mut self.rng, &mut cost);
            let from_t_a = sample(t, a, &mut self.rng, &mut cost);
            let from_t_b = sample(t, b, &mut self.rng, &mut cost);

            // p_i(x, y) ≈ Σ_v (count_x^a(v)/η) (count_y^b(v)/η) d(v)/d(y),
            // via a merge-join over the id-sorted multisets (ordered
            // iteration keeps the rounding a pure function of the seed).
            let collide = |xa: &[(NodeId, u64)], yb: &[(NodeId, u64)], d_y: f64| {
                let mut total = 0.0;
                let (mut i, mut j) = (0, 0);
                while i < xa.len() && j < yb.len() {
                    match xa[i].0.cmp(&yb[j].0) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let v = xa[i].0;
                            total += (xa[i].1 as f64 / eta as f64)
                                * (yb[j].1 as f64 / eta as f64)
                                * g.degree(v) as f64
                                / d_y;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                total
            };
            let p_ss = collide(&from_s_a, &from_s_b, ds);
            let p_tt = collide(&from_t_a, &from_t_b, dt);
            let p_st = collide(&from_s_a, &from_t_b, dt);
            let p_ts = collide(&from_t_a, &from_s_b, ds);
            value += p_ss / ds + p_tt / dt - p_st / dt - p_ts / ds;
        }
        Ok(Estimate { value, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn sample_formula_matches_reference_values() {
        let g = generators::complete(30).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let tpc = Tpc::new(&ctx, ApproxConfig::with_epsilon(0.5));
        let small_beta = tpc.walks_for_beta(1e-4);
        let big_beta = tpc.walks_for_beta(1e-1);
        assert!(big_beta > small_beta, "larger beta needs more walks");
        let scaled = Tpc::new(&ctx, ApproxConfig::with_epsilon(0.5)).with_sample_scale(1e-3);
        assert!(scaled.walks_for_beta(1e-2) < tpc.walks_for_beta(1e-2));
    }

    #[test]
    fn tpc_estimates_er_on_fast_mixing_graph() {
        // Use a scaled-down budget: the estimator remains unbiased, so on the
        // one-step-mixing complete graph a modest sample already lands close.
        let g = generators::complete(15).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let exact = LaplacianSolver::for_ground_truth(&g).effective_resistance(0, 3);
        let mut tpc =
            Tpc::new(&ctx, ApproxConfig::with_epsilon(0.2).reseeded(6)).with_sample_scale(1e-3);
        let est = tpc.estimate(0, 3).unwrap();
        assert!(
            (est.value - exact).abs() <= 0.2,
            "tpc {} vs exact {exact}",
            est.value
        );
        assert!(est.cost.random_walks > 0);
    }

    #[test]
    fn walk_budget_is_respected() {
        let g = generators::social_network_like(200, 8.0, 5).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut tpc = Tpc::new(&ctx, ApproxConfig::with_epsilon(0.1)).with_walk_budget(5_000);
        let est = tpc.estimate(0, 100).unwrap();
        assert!(
            est.cost.random_walks <= 5_000 + 2 * 200 + 4,
            "budget roughly respected"
        );
        assert!(est.value.is_finite());
        assert_eq!(tpc.estimate(4, 4).unwrap().value, 0.0);
    }
}
