//! HAY — spanning-tree sampling for *edge* effective resistance
//! (Hayashi, Akiba & Yoshida \[29\]; the edge-query baseline of Fig. 5/7).
//!
//! By the matrix-tree theorem, for an edge `(s, t) ∈ E` the effective
//! resistance equals the probability that the edge belongs to a uniformly
//! random spanning tree. HAY samples uniform spanning trees (here with
//! Wilson's algorithm) and returns the fraction containing the query edge.
//! A Hoeffding argument shows `ln(2/δ) / (2ε²)` trees suffice for an additive
//! ε-approximation with probability ≥ 1 − δ.

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use er_graph::NodeId;
use er_walks::par;
use er_walks::spanning::sample_spanning_trees;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The HAY estimator (edge queries only).
#[derive(Clone)]
pub struct Hay {
    context: GraphContext,
    config: ApproxConfig,
    rng: StdRng,
    tree_budget: Option<u64>,
}

impl Hay {
    /// Creates a HAY estimator.
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Self {
        Hay {
            context: context.clone(),
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x11a7),
            tree_budget: None,
        }
    }

    /// Caps the number of spanning trees sampled per query.
    pub fn with_tree_budget(mut self, budget: u64) -> Self {
        self.tree_budget = Some(budget);
        self
    }

    /// Number of spanning trees the Hoeffding bound requires:
    /// `⌈ln(2/δ) / (2ε²)⌉`.
    pub fn trees_required(&self) -> u64 {
        let eps = self.config.epsilon;
        ((2.0 / self.config.delta).ln() / (2.0 * eps * eps))
            .ceil()
            .max(1.0) as u64
    }
}

impl crate::estimator::ForkableEstimator for Hay {
    fn fork(&self, stream: u64) -> Self {
        let mut fork = self.clone();
        fork.rng =
            StdRng::seed_from_u64(er_walks::par::mix_seed(self.config.seed ^ 0x11a7, stream));
        fork
    }
}

impl ResistanceEstimator for Hay {
    fn name(&self) -> &'static str {
        "HAY"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.config.validate()?;
        self.context.check_pair(s, t)?;
        if s == t {
            return Ok(Estimate::with_value(0.0));
        }
        let g = self.context.graph();
        if !g.has_edge(s, t) {
            return Err(EstimatorError::NotAnEdge { s, t });
        }
        let mut trees = self.trees_required();
        if let Some(budget) = self.tree_budget {
            trees = trees.min(budget.max(1));
        }
        let mut cost = CostBreakdown::default();
        let fan_seed = self.rng.next_u64();
        // Chunked range fan-out with the multi-root lockstep Wilson driver:
        // tree `i` still draws from stream `(fan_seed, i)` exactly as the
        // old per-tree fan-out did, so the tree pool (and the estimate) is
        // bit-identical; several trees now grow per chunk in lockstep lanes.
        let (containing, walk_steps) = par::par_fold_ranges(
            trees,
            self.config.threads,
            || (0u64, 0u64),
            |chunk, acc: &mut (u64, u64)| {
                sample_spanning_trees(g, s, fan_seed, chunk, &mut |_, tree, steps| {
                    if tree.contains_edge(s, t) {
                        acc.0 += 1;
                    }
                    acc.1 += steps;
                })
            },
            |total, part| {
                total.0 += part.0;
                total.1 += part.1;
            },
        );
        cost.spanning_trees = trees;
        // True loop-erased-walk step count summed over the pool (the driver
        // reports it per tree), replacing the old `trees · (n − 1)` bound.
        cost.walk_steps = walk_steps;
        Ok(Estimate {
            value: containing as f64 / trees as f64,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn rejects_non_edges_and_handles_self_queries() {
        let g = generators::cycle(7).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut hay = Hay::new(&ctx, ApproxConfig::with_epsilon(0.5));
        assert!(matches!(
            hay.estimate(0, 3),
            Err(EstimatorError::NotAnEdge { .. })
        ));
        assert_eq!(hay.estimate(2, 2).unwrap().value, 0.0);
    }

    #[test]
    fn tree_count_follows_hoeffding() {
        let g = generators::complete(6).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let coarse = Hay::new(&ctx, ApproxConfig::with_epsilon(0.5)).trees_required();
        let fine = Hay::new(&ctx, ApproxConfig::with_epsilon(0.05)).trees_required();
        // 1/eps^2 scaling, up to the ceilings applied to both counts
        assert!(
            fine >= 90 * coarse && fine <= 100 * coarse,
            "trees scale with 1/eps^2: coarse {coarse} fine {fine}"
        );
    }

    #[test]
    fn hay_is_accurate_on_edges() {
        let g = generators::social_network_like(120, 8.0, 9).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let solver = LaplacianSolver::for_ground_truth(&g);
        let eps = 0.1;
        let mut hay = Hay::new(&ctx, ApproxConfig::with_epsilon(eps).reseeded(2));
        let mut checked = 0;
        for (s, t) in g.edges().step_by(97) {
            let exact = solver.effective_resistance(s, t);
            let est = hay.estimate(s, t).unwrap();
            assert!(
                (est.value - exact).abs() <= eps,
                "({s},{t}): hay {} vs exact {exact}",
                est.value
            );
            assert!(est.cost.spanning_trees > 0);
            checked += 1;
            if checked >= 3 {
                break;
            }
        }
        assert!(checked >= 3);
    }

    #[test]
    fn tree_budget_is_respected() {
        let g = generators::complete(40).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut hay = Hay::new(&ctx, ApproxConfig::with_epsilon(0.01)).with_tree_budget(25);
        let est = hay.estimate(0, 1).unwrap();
        assert_eq!(est.cost.spanning_trees, 25);
        assert!((0.0..=1.0).contains(&est.value));
    }
}
