//! RP — the random-projection baseline of Spielman & Srivastava \[62\].
//!
//! RP preprocesses the graph into a `(24 ln n / ε²) × n` sketch (each row one
//! Laplacian solve); afterwards every pairwise query is `O(k)` work. The
//! preprocessing is `Õ(m/ε²)` time and `Θ(n log n / ε²)` memory, which is why
//! the paper reports RP running out of memory on Orkut, LiveJournal and
//! Friendster; the same failure mode is reproduced here with an entry budget.

use crate::config::ApproxConfig;
use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::estimator::{CostBreakdown, Estimate, ResistanceEstimator};
use er_graph::NodeId;
use er_linalg::sketch::ResistanceSketch;

/// The RP estimator.
#[derive(Clone)]
pub struct Rp {
    context: GraphContext,
    sketch: ResistanceSketch,
}

impl Rp {
    /// The multiplicative constant in the row-count formula (`24 ln n / ε²`).
    pub const ROW_SCALE: f64 = 24.0;

    /// Default cap on `k · n` sketch entries (mirrors the paper's
    /// out-of-memory exclusions at laptop scale).
    pub const DEFAULT_ENTRY_BUDGET: usize = 200_000_000;

    /// Builds the sketch, failing if it would exceed the default entry budget.
    pub fn new(context: &GraphContext, config: ApproxConfig) -> Result<Self, EstimatorError> {
        Self::with_entry_budget(context, config, Self::DEFAULT_ENTRY_BUDGET)
    }

    /// Builds the sketch with an explicit entry budget.
    pub fn with_entry_budget(
        context: &GraphContext,
        config: ApproxConfig,
        entry_budget: usize,
    ) -> Result<Self, EstimatorError> {
        config.validate()?;
        let sketch = ResistanceSketch::build_with_limit(
            context.graph(),
            config.epsilon,
            Self::ROW_SCALE,
            config.seed ^ 0x0090,
            entry_budget,
        )
        .map_err(|e| EstimatorError::BudgetExceeded {
            resource: "memory",
            message: e.to_string(),
        })?;
        Ok(Rp {
            context: context.clone(),
            sketch,
        })
    }

    /// Number of sketch rows built during preprocessing.
    pub fn num_rows(&self) -> usize {
        self.sketch.num_rows()
    }
}

impl crate::estimator::ForkableEstimator for Rp {
    fn fork(&self, _stream: u64) -> Self {
        self.clone() // the sketch is fixed at build time; queries are deterministic
    }
}

impl ResistanceEstimator for Rp {
    fn name(&self) -> &'static str {
        "RP"
    }

    fn estimate(&mut self, s: NodeId, t: NodeId) -> Result<Estimate, EstimatorError> {
        self.context.check_pair(s, t)?;
        Ok(Estimate {
            value: self.sketch.query(s, t),
            cost: CostBreakdown::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;
    use er_linalg::LaplacianSolver;

    #[test]
    fn rp_reproduces_out_of_memory_failure() {
        let g = generators::social_network_like(500, 6.0, 2).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        match Rp::with_entry_budget(&ctx, ApproxConfig::with_epsilon(0.01), 1_000) {
            Err(EstimatorError::BudgetExceeded { resource, .. }) => assert_eq!(resource, "memory"),
            other => panic!("expected BudgetExceeded, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn rp_approximates_er_within_multiplicative_error() {
        let g = generators::social_network_like(100, 10.0, 8).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let mut rp = Rp::new(&ctx, ApproxConfig::with_epsilon(0.3).reseeded(5)).unwrap();
        assert!(rp.num_rows() > 0);
        let solver = LaplacianSolver::for_ground_truth(&g);
        for &(s, t) in &[(0usize, 50usize), (7, 99), (30, 31)] {
            let exact = solver.effective_resistance(s, t);
            let approx = rp.estimate(s, t).unwrap().value;
            let rel = (approx - exact).abs() / exact.max(1e-12);
            assert!(rel < 0.45, "({s},{t}): exact {exact} approx {approx}");
        }
        assert_eq!(rp.estimate(9, 9).unwrap().value, 0.0);
    }
}
