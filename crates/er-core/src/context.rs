//! Per-graph preprocessing shared by all estimators.
//!
//! The only preprocessing the paper's methods need is the eigenvalue bound
//! `λ = max{|λ₂|, |λₙ|}` of the transition matrix (Section 3.1): it is
//! computed once per graph (the paper quotes under five minutes with ARPACK on
//! the 117-million-edge Orkut graph) and reused by every query through
//! Eq. (5)/(6). [`GraphContext`] bundles a shared handle to the graph with
//! that value and validates the standing assumptions (connected,
//! non-bipartite).
//!
//! The context is **owned**: it holds the graph as an `Arc<Graph>`, so it is
//! `Send + Sync`, cheap to clone (a reference-count bump plus three floats)
//! and free of borrow lifetimes — estimators store their own copy, services
//! can cache contexts, and the parallel sampling layer can share one context
//! across worker threads.

use crate::error::EstimatorError;
use er_graph::{analysis, Graph, IntoGraphArc};
use er_linalg::lanczos;
use std::sync::Arc;

/// A graph together with its spectral preprocessing.
#[derive(Clone, Debug)]
pub struct GraphContext {
    graph: Arc<Graph>,
    lambda: f64,
    lambda2: f64,
    lambda_n: f64,
}

impl GraphContext {
    /// Default Krylov dimension for the Lanczos eigenvalue estimation.
    pub const DEFAULT_LANCZOS_ITERATIONS: usize = 120;

    /// Validates the graph (connected, non-bipartite) and computes
    /// `λ = max{|λ₂|, |λₙ|}` with the default Lanczos budget.
    ///
    /// Accepts a `Graph`, an `Arc<Graph>`, or a reference to either (a `&Graph`
    /// is copied once; pass the graph or an `Arc` by value to avoid the copy).
    pub fn preprocess(graph: impl IntoGraphArc) -> Result<Self, EstimatorError> {
        Self::preprocess_with(graph, Self::DEFAULT_LANCZOS_ITERATIONS, 0xe16e)
    }

    /// Validates the graph and computes λ with an explicit Lanczos iteration
    /// budget and seed.
    pub fn preprocess_with(
        graph: impl IntoGraphArc,
        lanczos_iterations: usize,
        seed: u64,
    ) -> Result<Self, EstimatorError> {
        let graph = graph.into_graph_arc();
        analysis::validate_ergodic(&graph)?;
        let (lambda2, lambda_n) = lanczos::spectral_bounds(&graph, lanczos_iterations, seed);
        let lambda = lambda2.abs().max(lambda_n.abs()).clamp(1e-9, 1.0 - 1e-9);
        Ok(GraphContext {
            graph,
            lambda,
            lambda2,
            lambda_n,
        })
    }

    /// Builds a context from an externally supplied λ (e.g. loaded from a
    /// preprocessing file, or a synthetic value in tests). The graph is still
    /// validated.
    pub fn with_lambda(graph: impl IntoGraphArc, lambda: f64) -> Result<Self, EstimatorError> {
        let graph = graph.into_graph_arc();
        analysis::validate_ergodic(&graph)?;
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(EstimatorError::InvalidParameter {
                name: "lambda",
                message: format!("must lie in (0, 1), got {lambda}"),
            });
        }
        Ok(GraphContext {
            graph,
            lambda,
            lambda2: lambda,
            lambda_n: -lambda,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared graph handle (for callers that want to keep the graph alive
    /// beyond the context, or to build further owned components on it).
    pub fn graph_arc(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// `λ = max{|λ₂|, |λₙ|}`, clamped into (0, 1).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The spectral gap `1 − λ` of the transition matrix.
    ///
    /// Because [`lambda`](Self::lambda) is clamped into
    /// `(1e-9, 1 − 1e-9)` at preprocessing time, the gap is always inside
    /// `(1e-9, 1 − 1e-9)` too — callers (notably the planner's
    /// `lambda_gap_threshold` rule) can compare it against thresholds without
    /// re-deriving anything from `lambda2`/`lambda_n` or handling 0/1
    /// degenerate values. Small gap ⇒ slow mixing (long walks, GEER's Monte
    /// Carlo tail is expensive); large gap ⇒ fast mixing.
    pub fn spectral_gap(&self) -> f64 {
        1.0 - self.lambda
    }

    /// The second-largest eigenvalue λ₂ of the transition matrix.
    pub fn lambda2(&self) -> f64 {
        self.lambda2
    }

    /// The smallest eigenvalue λₙ of the transition matrix.
    pub fn lambda_n(&self) -> f64 {
        self.lambda_n
    }

    /// Validates a query pair: both endpoints in range and `s != t` is *not*
    /// required (ER of a node with itself is 0 and estimators handle it).
    pub fn check_pair(&self, s: usize, t: usize) -> Result<(), EstimatorError> {
        self.graph.check_node(s)?;
        self.graph.check_node(t)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn preprocess_computes_lambda_in_unit_interval() {
        let g = generators::social_network_like(300, 8.0, 3).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        assert!(ctx.lambda() > 0.0 && ctx.lambda() < 1.0);
        assert!(ctx.lambda2() <= 1.0);
        assert!(ctx.lambda_n() >= -1.0);
        assert!(ctx.lambda() >= ctx.lambda2().abs() - 1e-12);
        assert_eq!(ctx.graph().num_nodes(), 300);
    }

    #[test]
    fn preprocess_rejects_invalid_graphs() {
        let disconnected = er_graph::GraphBuilder::from_edges(4, vec![(0, 1), (2, 3)])
            .build()
            .unwrap();
        assert!(GraphContext::preprocess(&disconnected).is_err());
        let bipartite = generators::cycle(6).unwrap();
        assert!(GraphContext::preprocess(&bipartite).is_err());
    }

    #[test]
    fn with_lambda_validates_range() {
        let g = generators::complete(5).unwrap();
        assert!(GraphContext::with_lambda(&g, 0.5).is_ok());
        assert!(GraphContext::with_lambda(&g, 0.0).is_err());
        assert!(GraphContext::with_lambda(&g, 1.0).is_err());
    }

    #[test]
    fn check_pair_bounds() {
        let g = generators::complete(5).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        assert!(ctx.check_pair(0, 4).is_ok());
        assert!(ctx.check_pair(0, 5).is_err());
    }

    #[test]
    fn lambda_of_complete_graph_matches_theory() {
        // K_n: eigenvalues of P are 1 and -1/(n-1) so lambda = 1/(n-1).
        let g = generators::complete(11).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        assert!((ctx.lambda() - 0.1).abs() < 1e-6, "lambda {}", ctx.lambda());
    }

    #[test]
    fn context_is_owned_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync + Clone + 'static>() {}
        assert_send_sync::<GraphContext>();

        // Contexts built from an Arc share the graph without copying it, can
        // outlive the caller's handle, and clones agree on everything.
        let g = std::sync::Arc::new(generators::complete(7).unwrap());
        let ctx = GraphContext::preprocess(g.clone()).unwrap();
        assert!(std::sync::Arc::ptr_eq(ctx.graph_arc(), &g));
        drop(g);
        let clone = ctx.clone();
        assert!(std::sync::Arc::ptr_eq(ctx.graph_arc(), clone.graph_arc()));
        assert_eq!(ctx.lambda(), clone.lambda());

        // A context can be moved to another thread and used there.
        let handle = std::thread::spawn(move || clone.graph().num_nodes());
        assert_eq!(handle.join().unwrap(), 7);
    }
}
