//! Per-graph preprocessing shared by all estimators.
//!
//! The only preprocessing the paper's methods need is the eigenvalue bound
//! `λ = max{|λ₂|, |λₙ|}` of the transition matrix (Section 3.1): it is
//! computed once per graph (the paper quotes under five minutes with ARPACK on
//! the 117-million-edge Orkut graph) and reused by every query through
//! Eq. (5)/(6). [`GraphContext`] bundles the graph reference with that value
//! and validates the standing assumptions (connected, non-bipartite).

use crate::error::EstimatorError;
use er_graph::{analysis, Graph};
use er_linalg::lanczos;

/// A graph together with its spectral preprocessing.
#[derive(Clone, Debug)]
pub struct GraphContext<'g> {
    graph: &'g Graph,
    lambda: f64,
    lambda2: f64,
    lambda_n: f64,
}

impl<'g> GraphContext<'g> {
    /// Default Krylov dimension for the Lanczos eigenvalue estimation.
    pub const DEFAULT_LANCZOS_ITERATIONS: usize = 120;

    /// Validates the graph (connected, non-bipartite) and computes
    /// `λ = max{|λ₂|, |λₙ|}` with the default Lanczos budget.
    pub fn preprocess(graph: &'g Graph) -> Result<Self, EstimatorError> {
        Self::preprocess_with(graph, Self::DEFAULT_LANCZOS_ITERATIONS, 0xe16e)
    }

    /// Validates the graph and computes λ with an explicit Lanczos iteration
    /// budget and seed.
    pub fn preprocess_with(
        graph: &'g Graph,
        lanczos_iterations: usize,
        seed: u64,
    ) -> Result<Self, EstimatorError> {
        analysis::validate_ergodic(graph)?;
        let (lambda2, lambda_n) = lanczos::spectral_bounds(graph, lanczos_iterations, seed);
        let lambda = lambda2.abs().max(lambda_n.abs()).clamp(1e-9, 1.0 - 1e-9);
        Ok(GraphContext {
            graph,
            lambda,
            lambda2,
            lambda_n,
        })
    }

    /// Builds a context from an externally supplied λ (e.g. loaded from a
    /// preprocessing file, or a synthetic value in tests). The graph is still
    /// validated.
    pub fn with_lambda(graph: &'g Graph, lambda: f64) -> Result<Self, EstimatorError> {
        analysis::validate_ergodic(graph)?;
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(EstimatorError::InvalidParameter {
                name: "lambda",
                message: format!("must lie in (0, 1), got {lambda}"),
            });
        }
        Ok(GraphContext {
            graph,
            lambda,
            lambda2: lambda,
            lambda_n: -lambda,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// `λ = max{|λ₂|, |λₙ|}`, clamped into (0, 1).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The second-largest eigenvalue λ₂ of the transition matrix.
    pub fn lambda2(&self) -> f64 {
        self.lambda2
    }

    /// The smallest eigenvalue λₙ of the transition matrix.
    pub fn lambda_n(&self) -> f64 {
        self.lambda_n
    }

    /// Validates a query pair: both endpoints in range and `s != t` is *not*
    /// required (ER of a node with itself is 0 and estimators handle it).
    pub fn check_pair(&self, s: usize, t: usize) -> Result<(), EstimatorError> {
        self.graph.check_node(s)?;
        self.graph.check_node(t)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn preprocess_computes_lambda_in_unit_interval() {
        let g = generators::social_network_like(300, 8.0, 3).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        assert!(ctx.lambda() > 0.0 && ctx.lambda() < 1.0);
        assert!(ctx.lambda2() <= 1.0);
        assert!(ctx.lambda_n() >= -1.0);
        assert!(ctx.lambda() >= ctx.lambda2().abs() - 1e-12);
        assert_eq!(ctx.graph().num_nodes(), 300);
    }

    #[test]
    fn preprocess_rejects_invalid_graphs() {
        let disconnected = er_graph::GraphBuilder::from_edges(4, vec![(0, 1), (2, 3)])
            .build()
            .unwrap();
        assert!(GraphContext::preprocess(&disconnected).is_err());
        let bipartite = generators::cycle(6).unwrap();
        assert!(GraphContext::preprocess(&bipartite).is_err());
    }

    #[test]
    fn with_lambda_validates_range() {
        let g = generators::complete(5).unwrap();
        assert!(GraphContext::with_lambda(&g, 0.5).is_ok());
        assert!(GraphContext::with_lambda(&g, 0.0).is_err());
        assert!(GraphContext::with_lambda(&g, 1.0).is_err());
    }

    #[test]
    fn check_pair_bounds() {
        let g = generators::complete(5).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        assert!(ctx.check_pair(0, 4).is_ok());
        assert!(ctx.check_pair(0, 5).is_err());
    }

    #[test]
    fn lambda_of_complete_graph_matches_theory() {
        // K_n: eigenvalues of P are 1 and -1/(n-1) so lambda = 1/(n-1).
        let g = generators::complete(11).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        assert!((ctx.lambda() - 0.1).abs() < 1e-6, "lambda {}", ctx.lambda());
    }
}
