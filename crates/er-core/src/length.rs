//! Maximum random-walk lengths: Peng et al.'s generic bound (Eq. 5) and the
//! paper's refined per-pair bound (Theorem 3.1 / Eq. 6).
//!
//! Both lengths guarantee `|r(s, t) − r_ℓ(s, t)| ≤ ε / 2` for the truncated
//! series of Eq. (4). The refined bound folds in the query nodes' degrees,
//! which shortens walks substantially on high-degree graphs — the effect
//! Fig. 11 of the paper quantifies and `er-bench`'s `fig11` binary reproduces.

/// Peng et al.'s maximum walk length (Eq. 5):
/// `ℓ = ⌈ ln(4 / (ε (1 − λ))) / ln(1 / λ) − 1 ⌉`, clamped to ≥ 0.
pub fn peng_length(epsilon: f64, lambda: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(
        (0.0..1.0).contains(&lambda) && lambda > 0.0,
        "lambda must be in (0,1)"
    );
    let numerator = (4.0 / (epsilon * (1.0 - lambda))).ln();
    let denominator = (1.0 / lambda).ln();
    let raw = numerator / denominator - 1.0;
    raw.ceil().max(0.0) as usize
}

/// The refined maximum walk length of Theorem 3.1 (Eq. 6):
/// `ℓ = ⌈ log((2/d(s) + 2/d(t)) / (ε (1 − λ))) / log(1/λ) − 1 ⌉`, clamped to ≥ 0.
///
/// `degree_s` and `degree_t` are the degrees of the query nodes.
pub fn refined_length(epsilon: f64, lambda: f64, degree_s: usize, degree_t: usize) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(
        (0.0..1.0).contains(&lambda) && lambda > 0.0,
        "lambda must be in (0,1)"
    );
    assert!(
        degree_s > 0 && degree_t > 0,
        "query nodes must have positive degree"
    );
    let budget = 2.0 / degree_s as f64 + 2.0 / degree_t as f64;
    let numerator = (budget / (epsilon * (1.0 - lambda))).ln();
    let denominator = (1.0 / lambda).ln();
    let raw = numerator / denominator - 1.0;
    raw.ceil().max(0.0) as usize
}

/// Truncation error bound actually achieved by a walk length `ell` for a pair
/// with the given degrees: `λ^{ℓ+1} / (1 − λ) · (1/d(s) + 1/d(t))`.
///
/// Exposed so tests can verify that both length formulas achieve ≤ ε/2 and
/// the refined one is not unnecessarily loose.
pub fn truncation_error_bound(ell: usize, lambda: f64, degree_s: usize, degree_t: usize) -> f64 {
    lambda.powi(ell as i32 + 1) / (1.0 - lambda) * (1.0 / degree_s as f64 + 1.0 / degree_t as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refined_length_never_exceeds_peng_length() {
        for &lambda in &[0.3, 0.7, 0.9, 0.99] {
            for &eps in &[0.5, 0.1, 0.02] {
                for &(ds, dt) in &[(1usize, 1usize), (2, 7), (50, 80), (1000, 3)] {
                    let refined = refined_length(eps, lambda, ds, dt);
                    let peng = peng_length(eps, lambda);
                    assert!(
                        refined <= peng,
                        "refined {refined} > peng {peng} for lambda={lambda} eps={eps} d=({ds},{dt})"
                    );
                }
            }
        }
    }

    #[test]
    fn refined_length_halves_on_high_degree_pairs() {
        // The paper remarks the refined ℓ is "often less than half" of Peng's
        // on graphs with high average degree.
        let lambda = 0.98;
        let eps = 0.1;
        let peng = peng_length(eps, lambda);
        let refined = refined_length(eps, lambda, 60, 60);
        assert!(
            (refined as f64) < 0.6 * peng as f64,
            "refined {refined} vs peng {peng}"
        );
    }

    #[test]
    fn both_lengths_guarantee_half_epsilon_truncation_error() {
        for &lambda in &[0.5, 0.9, 0.995] {
            for &eps in &[0.5, 0.05, 0.01] {
                for &(ds, dt) in &[(1usize, 2usize), (4, 9), (100, 100)] {
                    let refined = refined_length(eps, lambda, ds, dt);
                    assert!(
                        truncation_error_bound(refined, lambda, ds, dt) <= eps / 2.0 + 1e-12,
                        "refined bound violated: lambda={lambda} eps={eps} d=({ds},{dt})"
                    );
                    let peng = peng_length(eps, lambda);
                    // Peng's bound is derived for the degree-free budget 2;
                    // with actual degrees >= 1 it is at least as safe.
                    assert!(
                        truncation_error_bound(peng, lambda, 1, 1) <= eps / 2.0 + 1e-12,
                        "peng bound violated: lambda={lambda} eps={eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn lengths_shrink_with_easier_parameters() {
        // larger epsilon -> shorter walks; smaller lambda -> shorter walks
        assert!(peng_length(0.5, 0.9) < peng_length(0.01, 0.9));
        assert!(peng_length(0.1, 0.5) < peng_length(0.1, 0.99));
        assert!(refined_length(0.1, 0.9, 10, 10) <= refined_length(0.1, 0.9, 2, 2));
    }

    #[test]
    fn degenerate_cases_clamp_to_zero() {
        // Extremely high degrees and loose epsilon can push the raw formula
        // negative; the length must clamp to zero rather than underflow.
        let l = refined_length(0.5, 0.2, 1_000_000, 1_000_000);
        assert_eq!(l, 0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_panics() {
        peng_length(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0,1)")]
    fn lambda_one_panics() {
        refined_length(0.1, 1.0, 2, 2);
    }
}
