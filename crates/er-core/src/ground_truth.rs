//! Ground-truth effective resistance for accuracy evaluation.
//!
//! Section 5.1 of the paper: "The ground-truth ER values for these query node
//! pairs are obtained by applying SMM with 1000 iterations" (reaching roughly
//! 1e-8..1e-6 residual error). This module does the same and, as an extra
//! safeguard, can cross-check against a conjugate-gradient Laplacian solve:
//! two completely different computational paths agreeing to 1e-6 is a strong
//! signal that both are correct.

use crate::context::GraphContext;
use crate::error::EstimatorError;
use crate::smm;
use er_graph::{Graph, NodeId};
use er_linalg::LaplacianSolver;

/// How the ground-truth values are computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroundTruthMethod {
    /// SMM (Algorithm 2) run for a fixed, large number of iterations — the
    /// paper's choice.
    SmmIterations(usize),
    /// A conjugate-gradient Laplacian solve per pair.
    LaplacianSolve,
    /// Both, returning the SMM value after asserting agreement within `1e-5`.
    CrossChecked(usize),
}

/// Ground-truth oracle.
pub struct GroundTruth<'g> {
    graph: &'g Graph,
    method: GroundTruthMethod,
}

impl<'g> GroundTruth<'g> {
    /// The paper's default: SMM with 1000 iterations.
    pub const DEFAULT_SMM_ITERATIONS: usize = 1000;

    /// Creates a ground-truth oracle with the paper's SMM-based method.
    pub fn new(context: &'g GraphContext) -> Self {
        GroundTruth {
            graph: context.graph(),
            method: GroundTruthMethod::SmmIterations(Self::DEFAULT_SMM_ITERATIONS),
        }
    }

    /// Creates an oracle over a bare graph with an explicit method (used by
    /// the harness, which wants CG-based truth on larger graphs because one
    /// solve per pair is cheaper than 1000 dense SpMV iterations).
    pub fn with_method(graph: &'g Graph, method: GroundTruthMethod) -> Self {
        GroundTruth { graph, method }
    }

    /// The exact effective resistance of `(s, t)` (up to numerical residue).
    pub fn resistance(&self, s: NodeId, t: NodeId) -> Result<f64, EstimatorError> {
        self.graph.check_node(s)?;
        self.graph.check_node(t)?;
        if s == t {
            return Ok(0.0);
        }
        match self.method {
            GroundTruthMethod::SmmIterations(iters) => {
                Ok(smm::run_smm(self.graph, s, t, iters).r_b)
            }
            GroundTruthMethod::LaplacianSolve => {
                Ok(LaplacianSolver::for_ground_truth(self.graph).effective_resistance(s, t))
            }
            GroundTruthMethod::CrossChecked(iters) => {
                let via_smm = smm::run_smm(self.graph, s, t, iters).r_b;
                let via_solve =
                    LaplacianSolver::for_ground_truth(self.graph).effective_resistance(s, t);
                if (via_smm - via_solve).abs() > 1e-5 {
                    return Err(EstimatorError::InvalidParameter {
                        name: "ground_truth",
                        message: format!(
                            "SMM ({via_smm}) and CG ({via_solve}) disagree for pair ({s}, {t})"
                        ),
                    });
                }
                Ok(via_smm)
            }
        }
    }

    /// Ground truth for a batch of pairs.
    pub fn resistances(&self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<f64>, EstimatorError> {
        pairs.iter().map(|&(s, t)| self.resistance(s, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::generators;

    #[test]
    fn smm_and_cg_paths_agree() {
        let g = generators::social_network_like(150, 10.0, 12).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let smm_truth = GroundTruth::new(&ctx);
        let cg_truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let crossed = GroundTruth::with_method(&g, GroundTruthMethod::CrossChecked(800));
        for &(s, t) in &[(0usize, 75usize), (10, 149), (60, 61)] {
            let a = smm_truth.resistance(s, t).unwrap();
            let b = cg_truth.resistance(s, t).unwrap();
            assert!((a - b).abs() < 1e-6, "({s},{t}): {a} vs {b}");
            assert!(crossed.resistance(s, t).is_ok());
        }
    }

    #[test]
    fn batch_api_and_self_pairs() {
        let g = generators::complete(10).unwrap();
        let ctx = GraphContext::preprocess(&g).unwrap();
        let truth = GroundTruth::new(&ctx);
        let values = truth.resistances(&[(0, 1), (4, 4), (2, 9)]).unwrap();
        assert!((values[0] - 0.2).abs() < 1e-9);
        assert_eq!(values[1], 0.0);
        assert!((values[2] - 0.2).abs() < 1e-9);
        assert!(truth.resistance(0, 99).is_err());
    }
}
