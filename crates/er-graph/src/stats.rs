//! Dataset statistics (Table 3 of the paper).

use crate::analysis;
use crate::graph::Graph;
use std::fmt;

/// Summary statistics of a graph, mirroring Table 3 ("Statistics of Datasets")
/// plus a few structural diagnostics useful when validating synthetic
/// substitutes against the originals.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `n`.
    pub num_nodes: usize,
    /// Number of undirected edges `m`.
    pub num_edges: usize,
    /// Average degree `2m / n`.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Number of connected components.
    pub num_components: usize,
    /// Whether the graph is bipartite.
    pub bipartite: bool,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        GraphStats {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            average_degree: g.average_degree(),
            max_degree: g.max_degree(),
            min_degree: g.min_degree(),
            num_components: analysis::num_components(g),
            bipartite: analysis::is_bipartite(g),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.2} max_deg={} min_deg={} components={} bipartite={}",
            self.num_nodes,
            self.num_edges,
            self.average_degree,
            self.max_degree,
            self.min_degree,
            self.num_components,
            self.bipartite
        )
    }
}

/// Degree histogram: `hist[d]` is the number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Global clustering coefficient (transitivity): `3 * #triangles / #wedges`.
///
/// Used to sanity-check that the `social_network_like` generator produces
/// clustering in the range observed in real social networks.
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let mut triangles = 0usize;
    let mut wedges = 0usize;
    for v in g.nodes() {
        let d = g.degree(v);
        wedges += d * d.saturating_sub(1) / 2;
        let nbrs = g.neighbors(v);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        // each triangle is counted once per corner, i.e. 3 times in `triangles`
        triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_complete_graph() {
        let g = generators::complete(10).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 10);
        assert_eq!(s.num_edges, 45);
        assert!((s.average_degree - 9.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.min_degree, 9);
        assert_eq!(s.num_components, 1);
        assert!(!s.bipartite);
        assert!(s.to_string().contains("n=10"));
    }

    #[test]
    fn degree_histogram_on_star() {
        let g = generators::star(6).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 5);
        assert_eq!(hist[5], 1);
        assert_eq!(hist.iter().sum::<usize>(), 6);
    }

    #[test]
    fn clustering_coefficient_extremes() {
        // complete graph: every wedge closes -> coefficient 1
        let k = generators::complete(6).unwrap();
        assert!((global_clustering_coefficient(&k) - 1.0).abs() < 1e-12);
        // star: no triangles -> 0
        let s = generators::star(6).unwrap();
        assert_eq!(global_clustering_coefficient(&s), 0.0);
        // social-network-like graphs should land strictly in between
        let g = generators::social_network_like(500, 10.0, 3).unwrap();
        let c = global_clustering_coefficient(&g);
        assert!(c > 0.0 && c < 1.0, "clustering {c}");
    }
}
