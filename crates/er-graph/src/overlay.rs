//! An updatable view over an immutable CSR [`Graph`].
//!
//! The serving stack keeps graphs in CSR form because every hot path —
//! random-walk neighbour sampling, SpMV scans, binary-search edge tests —
//! wants contiguous sorted adjacency. CSR is also why a single edge mutation
//! used to cost a full rebuild: the arrays are immutable.
//!
//! [`OverlayGraph`] removes that cost for small bursts. It holds the base
//! graph behind an `Arc` plus **per-node sorted adjacency deltas** (edges
//! added since the base, edges removed from it), merged on read:
//!
//! * mutations are `O(log d)` sorted-vec insertions,
//! * `degree`/`has_edge` are `O(log d)` lookups against base + deltas,
//! * [`neighbors`](OverlayGraph::neighbors) merges the sorted base slice with
//!   the deltas in `O(d)`,
//! * [`collapse`](OverlayGraph::collapse) materialises a fresh CSR in
//!   `O(n + m)` — a sorted merge per node, with none of the global
//!   re-sorting a [`crate::GraphBuilder`] rebuild pays.
//!
//! The overlay is the substrate of incremental dynamic serving: between
//! snapshot refreshes the evolving edge set lives here, Laplacian solves run
//! against it through a matrix-free operator, and only a *refresh* (not every
//! burst) pays the CSR materialisation.

use crate::graph::{Graph, NodeId};
use std::sync::Arc;

/// An editable graph view: an immutable CSR base plus per-node sorted
/// adjacency deltas, merged on read.
///
/// ```
/// use er_graph::{generators, OverlayGraph};
/// use std::sync::Arc;
///
/// let base = Arc::new(generators::complete(4).unwrap());
/// let mut overlay = OverlayGraph::new(base);
/// assert!(overlay.remove_edge(0, 1));
/// assert!(!overlay.has_edge(0, 1));
/// assert_eq!(overlay.degree(0), 2);
/// let collapsed = overlay.collapse();
/// assert_eq!(collapsed.num_edges(), 5);
/// assert!(!collapsed.has_edge(0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct OverlayGraph {
    base: Arc<Graph>,
    /// `added[v]` — sorted neighbours of `v` added since the base. Disjoint
    /// from the base adjacency of `v`.
    added: Vec<Vec<NodeId>>,
    /// `removed[v]` — sorted neighbours of `v` removed from the base. Always
    /// a subset of the base adjacency of `v`.
    removed: Vec<Vec<NodeId>>,
    num_edges: usize,
    delta_edges: usize,
}

impl OverlayGraph {
    /// Wraps a base graph with empty deltas.
    pub fn new(base: Arc<Graph>) -> Self {
        let n = base.num_nodes();
        let num_edges = base.num_edges();
        OverlayGraph {
            base,
            added: vec![Vec::new(); n],
            removed: vec![Vec::new(); n],
            num_edges,
            delta_edges: 0,
        }
    }

    /// The base graph the deltas apply to.
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Number of nodes (fixed; deltas never grow the node set).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Number of undirected edges currently present (base ± deltas).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of undirected edges recorded in the deltas (inserts plus
    /// deletes since the base) — the "how dirty is this overlay" signal a
    /// refresh policy keys on.
    #[inline]
    pub fn delta_edges(&self) -> usize {
        self.delta_edges
    }

    /// Whether any deltas are recorded.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.delta_edges == 0
    }

    /// Current degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.base.degree(v) + self.added[v].len() - self.removed[v].len()
    }

    /// Whether the undirected edge `{u, v}` is currently present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if self.added[u].binary_search(&v).is_ok() {
            return true;
        }
        if self.removed[u].binary_search(&v).is_ok() {
            return false;
        }
        self.base.has_edge(u, v)
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if it was not
    /// already present; self-loops and out-of-range endpoints return `false`.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || u >= self.num_nodes() || v >= self.num_nodes() {
            return false;
        }
        if self.has_edge(u, v) {
            return false;
        }
        // Either the edge was removed from the base (un-remove it) or it is
        // genuinely new (record an add).
        if let Ok(pos) = self.removed[u].binary_search(&v) {
            self.removed[u].remove(pos);
            let pos = self.removed[v]
                .binary_search(&u)
                .expect("removed deltas are symmetric");
            self.removed[v].remove(pos);
            self.delta_edges -= 1;
        } else {
            let pos = self.added[u].binary_search(&v).unwrap_err();
            self.added[u].insert(pos, v);
            let pos = self.added[v].binary_search(&u).unwrap_err();
            self.added[v].insert(pos, u);
            self.delta_edges += 1;
        }
        self.num_edges += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || u >= self.num_nodes() || v >= self.num_nodes() {
            return false;
        }
        if !self.has_edge(u, v) {
            return false;
        }
        // Either the edge was an overlay add (drop the add) or a base edge
        // (record a remove).
        if let Ok(pos) = self.added[u].binary_search(&v) {
            self.added[u].remove(pos);
            let pos = self.added[v]
                .binary_search(&u)
                .expect("added deltas are symmetric");
            self.added[v].remove(pos);
            self.delta_edges -= 1;
        } else {
            let pos = self.removed[u].binary_search(&v).unwrap_err();
            self.removed[u].insert(pos, v);
            let pos = self.removed[v].binary_search(&u).unwrap_err();
            self.removed[v].insert(pos, u);
            self.delta_edges += 1;
        }
        self.num_edges -= 1;
        true
    }

    /// Calls `f` for every current neighbour of `v`, in sorted order — the
    /// read-side merge of the sorted base slice (minus removals) with the
    /// sorted adds. `O(d)` with no allocation; the Laplacian operator of the
    /// incremental-update path applies rows through this.
    pub fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        let base = self.base.neighbors(v);
        let removed = &self.removed[v];
        let added = &self.added[v];
        let mut r = 0;
        let mut a = 0;
        for &b in base {
            // Emit pending adds that sort before the next base neighbour.
            while a < added.len() && added[a] < b {
                f(added[a]);
                a += 1;
            }
            if r < removed.len() && removed[r] == b {
                r += 1;
                continue;
            }
            f(b);
        }
        while a < added.len() {
            f(added[a]);
            a += 1;
        }
    }

    /// The current sorted neighbour list of `v`, allocated.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, |u| out.push(u));
        out
    }

    /// Materialises the current edge set as a fresh CSR [`Graph`] in
    /// `O(n + m)`: per-node sorted merges straight into the CSR arrays, no
    /// global edge sort.
    ///
    /// The result is identical to rebuilding via [`crate::GraphBuilder`] from
    /// the same edge set (same sorted adjacency, same offsets).
    pub fn collapse(&self) -> Graph {
        let n = self.num_nodes();
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + self.degree(v);
        }
        let mut neighbors = vec![0 as NodeId; offsets[n]];
        let mut cursor = 0;
        for (v, &start) in offsets.iter().enumerate().take(n) {
            debug_assert_eq!(cursor, start);
            self.for_each_neighbor(v, |u| {
                neighbors[cursor] = u;
                cursor += 1;
            });
        }
        Graph::from_csr(offsets, neighbors, self.num_edges)
    }

    /// Whether the current graph is connected (BFS over the merged
    /// adjacency) — the cheap pre-check an incremental refresh runs before
    /// spending Lanczos iterations on a graph a deletion may have split.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0);
        let mut reached = 1;
        while let Some(v) = queue.pop_front() {
            self.for_each_neighbor(v, |u| {
                if !seen[u] {
                    seen[u] = true;
                    reached += 1;
                    queue.push_back(u);
                }
            });
        }
        reached == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    fn overlay(n: usize, edges: &[(usize, usize)]) -> OverlayGraph {
        let g = GraphBuilder::from_edges(n, edges.iter().copied())
            .build()
            .unwrap();
        OverlayGraph::new(Arc::new(g))
    }

    #[test]
    fn inserts_and_removes_round_trip() {
        let mut o = overlay(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(o.num_edges(), 3);
        assert!(o.insert_edge(0, 3));
        assert!(!o.insert_edge(0, 3), "already present");
        assert!(!o.insert_edge(2, 2), "self-loop");
        assert!(o.has_edge(3, 0));
        assert_eq!(o.degree(0), 2);
        assert_eq!(o.num_edges(), 4);
        assert_eq!(o.delta_edges(), 1);
        // Removing the overlay add restores a clean overlay.
        assert!(o.remove_edge(3, 0));
        assert!(o.is_clean());
        assert_eq!(o.num_edges(), 3);
        // Removing a base edge records a delta; re-inserting clears it.
        assert!(o.remove_edge(1, 2));
        assert!(!o.has_edge(1, 2));
        assert_eq!(o.delta_edges(), 1);
        assert!(o.insert_edge(2, 1));
        assert!(o.is_clean());
        assert!(!o.remove_edge(0, 2), "absent edge");
        assert!(!o.remove_edge(0, 9), "out of range");
    }

    #[test]
    fn merged_neighbors_stay_sorted() {
        let mut o = overlay(6, &[(1, 0), (1, 3), (1, 5)]);
        o.insert_edge(1, 2);
        o.insert_edge(1, 4);
        o.remove_edge(1, 3);
        assert_eq!(o.neighbors(1), vec![0, 2, 4, 5]);
        assert_eq!(o.degree(1), 4);
    }

    #[test]
    fn collapse_matches_builder_rebuild() {
        let g = generators::social_network_like(80, 6.0, 3).unwrap();
        let mut o = OverlayGraph::new(Arc::new(g.clone()));
        let mut edges: std::collections::BTreeSet<(usize, usize)> = g.edges().collect();
        // A mixed burst: some inserts, some deletes.
        let mutations = [(0usize, 41usize), (5, 66), (12, 13), (3, 70)];
        for &(u, v) in &mutations {
            if o.has_edge(u, v) {
                o.remove_edge(u, v);
                edges.remove(&(u.min(v), u.max(v)));
            } else {
                o.insert_edge(u, v);
                edges.insert((u.min(v), u.max(v)));
            }
        }
        let collapsed = o.collapse();
        let rebuilt = GraphBuilder::from_edges(80, edges.iter().copied())
            .build()
            .unwrap();
        assert_eq!(collapsed.num_edges(), rebuilt.num_edges());
        for v in 0..80 {
            assert_eq!(
                collapsed.neighbors(v),
                rebuilt.neighbors(v),
                "adjacency of node {v}"
            );
        }
        let (co, cn) = collapsed.csr();
        let (ro, rn) = rebuilt.csr();
        assert_eq!(co, ro);
        assert_eq!(cn, rn);
    }

    #[test]
    fn connectivity_tracks_deletions() {
        let mut o = overlay(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert!(o.is_connected());
        o.remove_edge(2, 3);
        assert!(!o.is_connected());
        o.insert_edge(0, 3);
        assert!(o.is_connected());
    }
}
