//! Error types for graph construction and loading.

use std::fmt;

/// Errors produced while building, loading or validating graphs.
#[derive(Debug)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// A node id referenced an index outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// The graph is not connected but the operation requires connectivity.
    NotConnected,
    /// The graph is bipartite but the operation requires a non-bipartite graph
    /// (the random-walk transition matrix must be aperiodic).
    Bipartite,
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Underlying IO failure while reading or writing an edge list.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::NotConnected => write!(f, "graph is not connected"),
            GraphError::Bipartite => write!(f, "graph is bipartite (walk is periodic)"),
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(GraphError::Empty.to_string().contains("no nodes"));
        assert!(GraphError::NotConnected.to_string().contains("connected"));
        assert!(GraphError::Bipartite.to_string().contains("bipartite"));
        let e = GraphError::NodeOutOfRange { node: 7, n: 3 };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        let e = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("12") && e.to_string().contains("bad token"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(e.to_string().contains("missing"));
        assert!(e.source().is_some());
        assert!(GraphError::Empty.source().is_none());
    }
}
