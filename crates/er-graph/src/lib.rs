//! Graph substrate for pairwise effective-resistance (ER) estimation.
//!
//! This crate provides everything the estimators in `er-core` need from a graph:
//!
//! * [`Graph`] — an immutable, undirected graph stored in compressed sparse row
//!   (CSR) form, optimised for the access patterns of random walks (uniform
//!   neighbour sampling) and sparse matrix–vector products (sequential scans of
//!   adjacency lists).
//! * [`GraphBuilder`] — an edge-list accumulator that deduplicates parallel
//!   edges, drops self-loops and produces a [`Graph`].
//! * [`generators`] — synthetic graph families (Barabási–Albert, Erdős–Rényi,
//!   Watts–Strogatz, stochastic block model, grids, paths, stars, …) used as
//!   laptop-scale stand-ins for the SNAP datasets of the paper's evaluation.
//! * [`io`] — SNAP-style whitespace-separated edge-list reading and writing.
//! * [`analysis`] — connectivity, largest-connected-component extraction and
//!   bipartiteness tests (the paper assumes a connected, non-bipartite graph).
//! * [`queries`] — random node-pair and random edge query-set generation
//!   matching Section 5.1 of the paper.
//! * [`partition`] — BFS-seeded label-propagation partitioning into
//!   balanced, connected parts, the substrate of the sharded serving plane.
//! * [`OverlayGraph`] — an updatable view over an immutable CSR base
//!   (per-node sorted adjacency deltas merged on read), the substrate of
//!   incremental dynamic serving: small mutation bursts never rebuild the CSR.
//!
//! The crate is dependency-light by design: only `rand` is used, and only for
//! the generators and query sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod overlay;
pub mod partition;
pub mod queries;
pub mod stats;
pub mod transform;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, IntoGraphArc, NodeId};
pub use overlay::OverlayGraph;
pub use partition::{Partition, PartitionConfig, PartitionStats, Partitioner};
pub use queries::{EdgeQuerySet, NodePairQuerySet, QueryPair};
pub use stats::GraphStats;
pub use transform::SubgraphMap;
