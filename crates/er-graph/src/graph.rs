//! Immutable undirected graph in compressed sparse row (CSR) form.
//!
//! The representation mirrors what the paper's algorithms need:
//!
//! * O(1) degree lookup `d(v)` (Eq. 4, Eq. 6, Eq. 9, …),
//! * O(1) uniform neighbour sampling for simple random walks,
//! * cache-friendly sequential adjacency scans for the SMM sparse
//!   matrix–vector multiplications (Algorithm 2),
//! * constant-time edge-membership tests for the MC2/HAY edge-query
//!   estimators (backed by per-node sorted adjacency and binary search).

use crate::error::GraphError;
use rand::Rng;
use std::sync::Arc;

/// Node identifier. Nodes are always `0..n` after construction.
pub type NodeId = usize;

/// Conversion into a shared, reference-counted graph handle.
///
/// The owned layers of the stack (`GraphContext`, `WalkEngine`, `ErIndex`)
/// store the graph as an `Arc<Graph>` so they are `Send + Sync`, cheaply
/// clonable and free of borrow lifetimes. This trait lets their constructors
/// accept whatever the caller has:
///
/// * `Graph` / `Arc<Graph>` — moved in, zero copies,
/// * `&Arc<Graph>` — reference count bump, zero copies,
/// * `&Graph` — one CSR copy (kept for source compatibility with the
///   borrow-based API; the copy is O(m) and is dwarfed by any preprocessing
///   the caller does next).
pub trait IntoGraphArc {
    /// Converts `self` into a shared graph handle.
    fn into_graph_arc(self) -> Arc<Graph>;
}

impl IntoGraphArc for Graph {
    fn into_graph_arc(self) -> Arc<Graph> {
        Arc::new(self)
    }
}

impl IntoGraphArc for Arc<Graph> {
    fn into_graph_arc(self) -> Arc<Graph> {
        self
    }
}

impl IntoGraphArc for &Arc<Graph> {
    fn into_graph_arc(self) -> Arc<Graph> {
        Arc::clone(self)
    }
}

impl IntoGraphArc for &Graph {
    fn into_graph_arc(self) -> Arc<Graph> {
        Arc::new(self.clone())
    }
}

/// An immutable, undirected, unweighted graph in CSR form.
///
/// Parallel edges and self-loops are removed during construction by
/// [`crate::GraphBuilder`]. Each undirected edge `{u, v}` is stored twice
/// (once in `u`'s adjacency list and once in `v`'s), so
/// [`Graph::num_directed_edges`] is `2 * m`.
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated, per-node sorted adjacency lists, length `2 * m`.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges `m`.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// This is the low-level constructor used by [`crate::GraphBuilder`]; the
    /// invariants (sorted adjacency, symmetric edges, no self-loops) are the
    /// builder's responsibility. Prefer the builder in application code.
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<NodeId>, num_edges: usize) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        Graph {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of directed arcs stored, i.e. `2 * m`.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree `d(v)` of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Average degree `2m / n`.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_directed_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// The neighbours of `v` as a sorted slice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Returns `true` if the undirected edge `{u, v}` exists.
    ///
    /// Runs in O(log d(u)) via binary search over the sorted adjacency list of
    /// the lower-degree endpoint.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Samples a uniformly random neighbour of `v`, or `None` if `v` is isolated.
    ///
    /// This is the single step of the simple random walk used throughout the
    /// paper: from `v`, move to each neighbour with probability `1 / d(v)`.
    #[inline]
    pub fn random_neighbor<R: Rng + ?Sized>(&self, v: NodeId, rng: &mut R) -> Option<NodeId> {
        let nbrs = self.neighbors(v);
        if nbrs.is_empty() {
            None
        } else {
            Some(nbrs[rng.gen_range(0..nbrs.len())])
        }
    }

    /// Iterates over every undirected edge `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes()
    }

    /// The stationary probability `π(v) = d(v) / 2m` of the simple random walk.
    #[inline]
    pub fn stationary(&self, v: NodeId) -> f64 {
        self.degree(v) as f64 / self.num_directed_edges() as f64
    }

    /// Degrees of all nodes as a vector (convenience for the linear-algebra layer).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes()).map(|v| self.degree(v)).collect()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Validates that a node id is within range.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v,
                n: self.num_nodes(),
            })
        }
    }

    /// Returns the CSR arrays `(offsets, neighbors)`; used by the
    /// linear-algebra layer to construct the transition matrix without copying
    /// the adjacency structure node by node.
    pub fn csr(&self) -> (&[usize], &[NodeId]) {
        (&self.offsets, &self.neighbors)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    fn triangle() -> crate::Graph {
        GraphBuilder::new(3)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .build()
            .unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn degrees_and_neighbors_are_sorted() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 3)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(2, 3)
            .build()
            .unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degrees(), vec![3, 1, 2, 2]);
    }

    #[test]
    fn has_edge_symmetry() {
        let g = triangle();
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(g.has_edge(u, v), u != v);
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let g = GraphBuilder::new(5)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 0)
            .add_edge(0, 2)
            .build()
            .unwrap();
        let total: f64 = g.nodes().map(|v| g.stationary(v)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_neighbor_respects_adjacency() {
        let g = triangle();
        let mut rng = rand::thread_rng();
        for _ in 0..100 {
            let v = g.random_neighbor(0, &mut rng).unwrap();
            assert!(g.neighbors(0).contains(&v));
        }
    }

    #[test]
    fn check_node_bounds() {
        let g = triangle();
        assert!(g.check_node(2).is_ok());
        assert!(g.check_node(3).is_err());
    }
}
