//! Synthetic graph generators.
//!
//! The paper evaluates on six SNAP social networks (Facebook, DBLP, YouTube,
//! Orkut, LiveJournal, Friendster). Those raw datasets are not shipped with
//! this repository, so the benchmark harness substitutes synthetic graphs
//! whose *shape* matches: heavy-tailed degree distributions produced by the
//! Barabási–Albert preferential-attachment model (optionally mixed with a
//! stochastic block model for community structure), with the average degree
//! tuned to each dataset. All generators are deterministic given a seed.
//!
//! Small structured graphs (paths, cycles, grids, stars, complete graphs,
//! lollipops, barbells) are provided for unit tests and for validating the
//! estimators against closed-form effective-resistance values (e.g. on a path
//! graph `r(s, t) = |s - t|`, on a complete graph `r(s, t) = 2 / n`).

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Path graph `0 - 1 - … - (n-1)`. Exact ER: `r(s, t) = |s - t|`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b = b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle graph on `n` nodes. Exact ER: `r(s, t) = k (n - k) / n` where
/// `k = |s - t| mod n` is the hop distance along the cycle.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b = b.add_edge(v - 1, v);
    }
    if n > 2 {
        b = b.add_edge(n - 1, 0);
    }
    b.build()
}

/// Star graph: node 0 is the hub connected to `1..n`.
/// Exact ER: `r(0, v) = 1`, `r(u, v) = 2` for distinct leaves `u, v`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b = b.add_edge(0, v);
    }
    b.build()
}

/// Complete graph `K_n`. Exact ER: `r(s, t) = 2 / n` for `s != t`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b = b.add_edge(u, v);
        }
    }
    b.build()
}

/// Two-dimensional grid graph of `rows x cols` nodes with 4-neighbour
/// connectivity. Node `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                b = b.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                b = b.add_edge(id, id + cols);
            }
        }
    }
    b.build()
}

/// Lollipop graph: a complete graph on `clique` nodes with a path of `tail`
/// extra nodes attached to node 0. A classic worst case for commute times.
pub fn lollipop(clique: usize, tail: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(clique + tail);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b = b.add_edge(u, v);
        }
    }
    let mut prev = 0;
    for i in 0..tail {
        let node = clique + i;
        b = b.add_edge(prev, node);
        prev = node;
    }
    b.build()
}

/// Barbell graph: two complete graphs on `clique` nodes joined by a path of
/// `bridge` nodes. Another stress test for mixing-time-sensitive estimators.
pub fn barbell(clique: usize, bridge: usize) -> Result<Graph, GraphError> {
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b = b.add_edge(u, v);
            b = b.add_edge(clique + bridge + u, clique + bridge + v);
        }
    }
    let mut prev = 0; // attach bridge between node 0 of the left clique …
    for i in 0..bridge {
        let node = clique + i;
        b = b.add_edge(prev, node);
        prev = node;
    }
    // … and node 0 of the right clique.
    b = b.add_edge(prev, clique + bridge);
    b.build()
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                b = b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)` random graph with exactly `m` distinct edges
/// (or the maximum possible if `m` exceeds `n(n-1)/2`).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let target = m.min(max_edges);
    let mut chosen = std::collections::HashSet::with_capacity(target);
    let mut b = GraphBuilder::new(n);
    while chosen.len() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b = b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a clique on
/// `m0 = max(m_attach, 2)` nodes, then each new node attaches to `m_attach`
/// distinct existing nodes chosen with probability proportional to degree.
///
/// Produces the heavy-tailed degree distribution characteristic of the SNAP
/// social networks used in the paper; the average degree is ≈ `2 * m_attach`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Result<Graph, GraphError> {
    let m_attach = m_attach.max(1);
    let m0 = (m_attach + 1).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // `targets` holds one entry per edge endpoint, so sampling uniformly from
    // it is exactly degree-proportional sampling.
    let mut endpoint_pool: Vec<usize> = Vec::with_capacity(2 * n * m_attach);
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            b = b.add_edge(u, v);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    for new in m0..n {
        // BTreeSet, not HashSet: the picked targets are appended to
        // `endpoint_pool` in iteration order, and later sampling indexes into
        // the pool — HashSet's per-process hash keys would make the generated
        // graph differ between runs despite the fixed seed.
        let mut picked = std::collections::BTreeSet::new();
        let mut guard = 0;
        while picked.len() < m_attach.min(new) && guard < 50 * m_attach + 100 {
            guard += 1;
            let target = if endpoint_pool.is_empty() {
                rng.gen_range(0..new)
            } else {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            };
            if target != new {
                picked.insert(target);
            }
        }
        for &t in &picked {
            b = b.add_edge(new, t);
            endpoint_pool.push(new);
            endpoint_pool.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbours (`k` even), with each edge rewired to a random
/// endpoint with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, GraphError> {
    let k = k.max(2) & !1; // force even
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if u != v {
                edges.push((u, v));
            }
        }
    }
    let final_edges: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(u, v)| {
            if rng.gen::<f64>() < beta {
                // rewire the far endpoint
                let mut w = rng.gen_range(0..n);
                let mut guard = 0;
                while (w == u || w == v) && guard < 10 {
                    w = rng.gen_range(0..n);
                    guard += 1;
                }
                if w == u {
                    (u, v)
                } else {
                    (u, w)
                }
            } else {
                (u, v)
            }
        })
        .collect();
    GraphBuilder::from_edges(n, final_edges).build()
}

/// Stochastic block model with `blocks` equally sized communities:
/// within-community edge probability `p_in`, across-community probability `p_out`.
pub fn stochastic_block_model(
    n: usize,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    let blocks = blocks.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let block_of = |v: usize| v * blocks / n.max(1);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of(u) == block_of(v) {
                p_in
            } else {
                p_out
            };
            if rng.gen::<f64>() < p {
                b = b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// A "social-network-like" graph: Barabási–Albert backbone plus random triadic
/// closure edges, which raises clustering towards what the SNAP datasets show.
///
/// `avg_degree` controls the target average degree; the result is connected by
/// construction (the BA backbone is connected).
pub fn social_network_like(n: usize, avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    let m_attach = ((avg_degree / 2.0).round() as usize).max(1);
    let base = barabasi_albert(n, m_attach, seed)?;
    // Triadic closure: for a sample of wedges u - v - w, add edge u - w.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9));
    let extra_target = ((avg_degree * n as f64 / 2.0) as usize).saturating_sub(base.num_edges());
    let mut b = GraphBuilder::from_edges(n, base.edges());
    let mut added = 0;
    let mut guard = 0;
    while added < extra_target && guard < 20 * extra_target + 100 {
        guard += 1;
        let v = rng.gen_range(0..n);
        let nbrs = base.neighbors(v);
        if nbrs.len() < 2 {
            continue;
        }
        let u = nbrs[rng.gen_range(0..nbrs.len())];
        let w = nbrs[rng.gen_range(0..nbrs.len())];
        if u != w && !base.has_edge(u, w) {
            b = b.add_edge(u, w);
            added += 1;
        }
    }
    b.build()
}

/// A "community-structured social network": `num_communities` Barabási–Albert
/// communities of roughly equal size arranged on a ring, joined by a thin
/// layer of inter-community bridge edges (`inter_fraction` of the total edge
/// budget, spread over adjacent communities).
///
/// Compared to [`social_network_like`] (a single preferential-attachment
/// graph, which is a strong expander), the thin bridges slow down mixing and
/// push the transition matrix's λ = max{|λ₂|, |λₙ|} close to 1 — matching the
/// behaviour of the real SNAP social networks far better, which is exactly
/// what the maximum-walk-length formulas (Eq. 5/6 of the paper) are sensitive
/// to. The benchmark dataset registry uses this generator for its synthetic
/// SNAP substitutes.
pub fn community_social_network(
    n: usize,
    avg_degree: f64,
    num_communities: usize,
    inter_fraction: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    let num_communities = num_communities.clamp(1, n.max(1));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0331);
    // Community sizes: as equal as possible.
    let base = n / num_communities;
    let remainder = n % num_communities;
    let mut start = 0usize;
    let mut ranges = Vec::with_capacity(num_communities);
    for c in 0..num_communities {
        let size = base + usize::from(c < remainder);
        ranges.push(start..start + size);
        start += size;
    }
    let mut b = GraphBuilder::new(n);
    // Intra-community edges from independent BA graphs, offset into place.
    for (c, range) in ranges.iter().enumerate() {
        let size = range.len();
        if size == 0 {
            continue;
        }
        let m_attach = ((avg_degree / 2.0).round() as usize)
            .max(1)
            .min(size.saturating_sub(1).max(1));
        let community = barabasi_albert(size.max(2), m_attach, seed.wrapping_add(c as u64))?;
        for (u, v) in community.edges() {
            if u < size && v < size {
                b = b.add_edge(range.start + u, range.start + v);
            }
        }
    }
    // Inter-community bridges along the ring (plus a few random chords), sized
    // as a fraction of the total edge budget.
    let total_edges = (avg_degree * n as f64 / 2.0) as usize;
    let bridges = ((total_edges as f64 * inter_fraction).ceil() as usize).max(num_communities);
    for i in 0..bridges {
        let c = i % num_communities;
        let next = if i % 7 == 6 {
            // occasional long-range chord keeps the diameter reasonable
            rng.gen_range(0..num_communities)
        } else {
            (c + 1) % num_communities
        };
        if ranges[c].is_empty() || ranges[next].is_empty() {
            continue;
        }
        let u = rng.gen_range(ranges[c].clone());
        let v = rng.gen_range(ranges[next].clone());
        if u != v {
            b = b.add_edge(u, v);
        }
    }
    b.build()
}

/// The 11-node toy graph of Fig. 2 in the paper (nodes `s`, `t` and `v1..v9`).
///
/// Node ids: `s = 0`, `t = 1`, `v_i = i + 1` for `i = 1..9`. The figure does
/// not list the edge set explicitly; this reconstruction gives `s` two
/// neighbours and `t` seven neighbours, matching the path-count narrative of
/// Section 4 (few paths near `s`, an explosion of paths near `t`).
pub fn fig2_toy() -> Graph {
    // s = 0, t = 1, v1..v9 = 2..=10
    let edges = vec![
        // s has two neighbours: v1, v2
        (0, 2),
        (0, 3),
        // t has seven neighbours: v2..v8
        (1, 3),
        (1, 4),
        (1, 5),
        (1, 6),
        (1, 7),
        (1, 8),
        (1, 9),
        // periphery connections keeping the graph connected and non-bipartite
        (2, 3),
        (4, 5),
        (6, 7),
        (8, 9),
        (9, 10),
        (2, 10),
    ];
    GraphBuilder::from_edges(11, edges)
        .build()
        .expect("fig2 toy graph is a valid graph")
}

/// Randomly shuffles node labels of a graph (useful to de-correlate node id
/// order from generation order in benchmarks).
pub fn shuffle_labels(g: &Graph, seed: u64) -> Graph {
    let n = g.num_nodes();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    let edges = g.edges().map(|(u, v)| (perm[u], perm[v]));
    GraphBuilder::from_edges(n, edges)
        .build()
        .expect("relabelling preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5).unwrap();
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = cycle(5).unwrap();
        assert_eq!(c.num_edges(), 5);
        assert!(c.nodes().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn star_and_complete_shapes() {
        let s = star(6).unwrap();
        assert_eq!(s.degree(0), 5);
        assert!(s.nodes().skip(1).all(|v| s.degree(v) == 1));
        let k = complete(6).unwrap();
        assert_eq!(k.num_edges(), 15);
        assert!(k.nodes().all(|v| k.degree(v) == 5));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.num_nodes(), 12);
        // 3*3 horizontal + 2*4 vertical = 9 + 8 = 17
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn lollipop_and_barbell() {
        let l = lollipop(5, 3).unwrap();
        assert_eq!(l.num_nodes(), 8);
        assert_eq!(l.num_edges(), 10 + 3);
        assert!(analysis::is_connected(&l));
        let b = barbell(4, 2).unwrap();
        assert_eq!(b.num_nodes(), 10);
        assert_eq!(b.num_edges(), 6 + 6 + 3);
        assert!(analysis::is_connected(&b));
    }

    #[test]
    fn gnp_and_gnm_are_deterministic_given_seed() {
        let a = erdos_renyi_gnp(50, 0.2, 7).unwrap();
        let b = erdos_renyi_gnp(50, 0.2, 7).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        let c = erdos_renyi_gnm(50, 100, 7).unwrap();
        assert_eq!(c.num_edges(), 100);
    }

    #[test]
    fn barabasi_albert_is_connected_with_expected_density() {
        let g = barabasi_albert(500, 4, 42).unwrap();
        assert_eq!(g.num_nodes(), 500);
        assert!(analysis::is_connected(&g));
        let avg = g.average_degree();
        assert!(avg > 6.0 && avg < 10.0, "avg degree {avg} should be ~8");
        // heavy tail: max degree should be much larger than the average
        assert!(g.max_degree() as f64 > 3.0 * avg);
    }

    #[test]
    fn watts_strogatz_density() {
        let g = watts_strogatz(200, 6, 0.1, 3).unwrap();
        assert_eq!(g.num_nodes(), 200);
        // roughly n*k/2 edges (rewiring can only merge duplicates)
        assert!(g.num_edges() > 500 && g.num_edges() <= 600);
    }

    #[test]
    fn sbm_respects_block_structure() {
        let g = stochastic_block_model(100, 2, 0.3, 0.01, 11).unwrap();
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if (u < 50) == (v < 50) {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 5 * across, "within={within} across={across}");
    }

    #[test]
    fn social_network_like_matches_target_degree() {
        let g = social_network_like(1000, 12.0, 5).unwrap();
        assert!(analysis::is_connected(&g));
        let avg = g.average_degree();
        assert!(avg > 8.0 && avg < 16.0, "avg degree {avg}");
    }

    #[test]
    fn community_network_is_connected_with_target_degree() {
        let g = community_social_network(2_000, 10.0, 16, 0.01, 3).unwrap();
        assert_eq!(g.num_nodes(), 2_000);
        assert!(analysis::is_connected(&g));
        assert!(!analysis::is_bipartite(&g));
        let avg = g.average_degree();
        assert!(avg > 6.0 && avg < 14.0, "avg degree {avg}");
    }

    #[test]
    fn community_network_mixes_slower_than_plain_ba() {
        // The thin inter-community bridges must slow down mixing: the number
        // of edges crossing between the first and second half of the node ids
        // (communities are contiguous id ranges) should be a small fraction of
        // all edges, unlike in the single-community generator.
        let g = community_social_network(1_000, 10.0, 10, 0.01, 5).unwrap();
        let crossing = g.edges().filter(|&(u, v)| (u < 500) != (v < 500)).count();
        assert!(
            (crossing as f64) < 0.05 * g.num_edges() as f64,
            "crossing edges {crossing} of {}",
            g.num_edges()
        );
        let ba = social_network_like(1_000, 10.0, 5).unwrap();
        let ba_crossing = ba.edges().filter(|&(u, v)| (u < 500) != (v < 500)).count();
        assert!(
            ba_crossing > 4 * crossing,
            "BA graph has no community structure"
        );
    }

    #[test]
    fn fig2_toy_is_valid() {
        let g = fig2_toy();
        assert_eq!(g.num_nodes(), 11);
        assert!(analysis::is_connected(&g));
        assert!(!analysis::is_bipartite(&g));
        assert_eq!(g.degree(0), 2, "s has two neighbours");
        assert_eq!(g.degree(1), 7, "t has seven neighbours");
    }

    #[test]
    fn shuffle_preserves_structure() {
        let g = barabasi_albert(100, 3, 1).unwrap();
        let h = shuffle_labels(&g, 99);
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        let mut gd = g.degrees();
        let mut hd = h.degrees();
        gd.sort_unstable();
        hd.sort_unstable();
        assert_eq!(gd, hd, "degree multiset preserved");
    }
}
