//! Structural analysis: connectivity, connected components, bipartiteness.
//!
//! The paper's algorithms assume the input graph is connected and
//! non-bipartite (so the random-walk transition matrix is ergodic). These
//! helpers let callers validate that assumption or extract the largest
//! connected component and, if necessary, break bipartiteness explicitly.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Returns the connected-component label of every node (labels are `0..k`,
/// assigned in order of discovery by BFS from the lowest-id unvisited node).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    connected_components(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}

/// `true` iff the graph is connected (and non-empty).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() > 0 && num_components(g) == 1
}

/// `true` iff the graph is bipartite (2-colourable). A bipartite graph has a
/// periodic random walk, violating the ergodicity assumption of the paper.
pub fn is_bipartite(g: &Graph) -> bool {
    let n = g.num_nodes();
    let mut color = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    queue.push_back(v);
                } else if color[v] == color[u] {
                    return false;
                }
            }
        }
    }
    true
}

/// Extracts the largest connected component as a new graph.
///
/// Returns the subgraph together with the mapping `new id -> original id`.
/// Ties between equal-sized components are broken by the smallest original
/// node id contained in the component.
pub fn largest_connected_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let labels = connected_components(g);
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = (0..k).max_by_key(|&c| sizes[c]).unwrap_or(0);
    let mut old_of_new: Vec<NodeId> = Vec::with_capacity(sizes.get(best).copied().unwrap_or(0));
    let mut new_of_old = vec![usize::MAX; g.num_nodes()];
    for v in g.nodes() {
        if labels[v] == best {
            new_of_old[v] = old_of_new.len();
            old_of_new.push(v);
        }
    }
    let mut b = GraphBuilder::new(old_of_new.len());
    for (u, v) in g.edges() {
        if labels[u] == best && labels[v] == best {
            b = b.add_edge(new_of_old[u], new_of_old[v]);
        }
    }
    let sub = b.build().expect("LCC of a non-empty graph is non-empty");
    (sub, old_of_new)
}

/// Validates the paper's standing assumptions: connected and non-bipartite.
pub fn validate_ergodic(g: &Graph) -> Result<(), GraphError> {
    if !is_connected(g) {
        return Err(GraphError::NotConnected);
    }
    if is_bipartite(g) {
        return Err(GraphError::Bipartite);
    }
    Ok(())
}

/// Breadth-first distances (in hops) from `source`; unreachable nodes get
/// `usize::MAX`. Used in tests and by the mixing-time diagnostics.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Counts the number of distinct walks of each length `1..=max_len` starting
/// from `source` (the `#path(s)` column of the running example in Fig. 2 of
/// the paper). Saturates at `u64::MAX` on overflow.
///
/// A walk of length `i` from `s` is a sequence `s = w_0, w_1, …, w_i` where
/// consecutive nodes are adjacent; the count therefore equals
/// `sum_v (A^i e_s)(v)` computed here by repeated frontier expansion.
pub fn count_walks_from(g: &Graph, source: NodeId, max_len: usize) -> Vec<u64> {
    let n = g.num_nodes();
    let mut current = vec![0u64; n];
    current[source] = 1;
    let mut out = Vec::with_capacity(max_len);
    for _ in 0..max_len {
        let mut next = vec![0u64; n];
        for (u, &mass) in current.iter().enumerate() {
            if mass == 0 {
                continue;
            }
            for &v in g.neighbors(u) {
                next[v] = next[v].saturating_add(mass);
            }
        }
        current = next;
        out.push(current.iter().fold(0u64, |acc, &x| acc.saturating_add(x)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_disconnected_graph() {
        let g = GraphBuilder::from_edges(6, vec![(0, 1), (1, 2), (3, 4)])
            .build()
            .unwrap();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_eq!(num_components(&g), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn lcc_extraction() {
        let g = GraphBuilder::from_edges(7, vec![(0, 1), (1, 2), (2, 0), (3, 4), (5, 6)])
            .build()
            .unwrap();
        let (lcc, mapping) = largest_connected_component(&g);
        assert_eq!(lcc.num_nodes(), 3);
        assert_eq!(lcc.num_edges(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
    }

    #[test]
    fn bipartite_detection() {
        // even cycle is bipartite, odd cycle is not
        assert!(is_bipartite(&generators::cycle(6).unwrap()));
        assert!(!is_bipartite(&generators::cycle(5).unwrap()));
        // path is bipartite
        assert!(is_bipartite(&generators::path(4).unwrap()));
        // triangle is not
        assert!(!is_bipartite(&generators::complete(3).unwrap()));
    }

    #[test]
    fn validate_ergodic_flags_both_failure_modes() {
        let disconnected = GraphBuilder::from_edges(4, vec![(0, 1), (2, 3)])
            .build()
            .unwrap();
        assert!(matches!(
            validate_ergodic(&disconnected),
            Err(GraphError::NotConnected)
        ));
        let even_cycle = generators::cycle(4).unwrap();
        assert!(matches!(
            validate_ergodic(&even_cycle),
            Err(GraphError::Bipartite)
        ));
        let ok = generators::complete(4).unwrap();
        assert!(validate_ergodic(&ok).is_ok());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(5).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn walk_counts_on_small_graphs() {
        // On a triangle every node has 2 neighbours so there are 2^i walks of length i.
        let tri = generators::complete(3).unwrap();
        assert_eq!(count_walks_from(&tri, 0, 4), vec![2, 4, 8, 16]);
        // On a path of 3 nodes from the middle: 2 walks of length 1 (to either
        // endpoint), 2 of length 2 (both return to the middle), 4 of length 3.
        let p = generators::path(3).unwrap();
        assert_eq!(count_walks_from(&p, 1, 3), vec![2, 2, 4]);
    }

    #[test]
    fn fig2_walk_counts_grow_faster_from_t() {
        let g = generators::fig2_toy();
        let from_s = count_walks_from(&g, 0, 8);
        let from_t = count_walks_from(&g, 1, 8);
        // The qualitative claim of the running example: walk counts from t
        // (degree 7) dominate those from s (degree 2) at every length.
        for i in 0..8 {
            assert!(
                from_t[i] > from_s[i],
                "length {}: {} !> {}",
                i + 1,
                from_t[i],
                from_s[i]
            );
        }
    }
}
