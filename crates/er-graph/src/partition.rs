//! Graph partitioning for the sharded serving plane.
//!
//! A [`Partitioner`] cuts a connected graph into `k` balanced, connected
//! parts using BFS-seeded label propagation: seeds are spread by
//! farthest-point BFS, parts grow by balanced multi-source BFS, and a few
//! label-propagation sweeps then trade boundary nodes between parts whenever
//! a move reduces the edge cut without violating the balance constraint.
//! A final repair pass reassigns stray components so every part is connected
//! — per-shard services require connected subgraphs.
//!
//! The output [`Partition`] carries the per-node assignment, the sorted
//! boundary-node list (nodes with at least one neighbour in another part)
//! and the edge cut; [`Partition::stats`] summarises balance and cut
//! quality.

use crate::analysis;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Tuning knobs of the [`Partitioner`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionConfig {
    /// Number of parts to produce (clamped to the node count).
    pub num_parts: usize,
    /// Balance slack: no part may exceed `ceil((1 + slack) · n / k)` nodes
    /// during label propagation. The connectivity repair pass may exceed the
    /// cap — connectedness of every part trumps balance.
    pub balance_slack: f64,
    /// Label-propagation sweeps over all nodes.
    pub sweeps: usize,
    /// Seed for deterministic tie-breaking (currently ties break by node id;
    /// the seed is kept in the config so future refinement passes stay
    /// reproducible without an API change).
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_parts: 2,
            balance_slack: 0.1,
            sweeps: 8,
            seed: 0x5eed,
        }
    }
}

impl PartitionConfig {
    /// A config for `num_parts` parts with default slack and sweeps.
    pub fn with_parts(num_parts: usize) -> Self {
        PartitionConfig {
            num_parts,
            ..PartitionConfig::default()
        }
    }
}

/// A `k`-way node partition of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Number of parts actually produced.
    pub num_parts: usize,
    /// `assignment[v]` is the part of node `v` (`0..num_parts`).
    pub assignment: Vec<usize>,
    /// All nodes with at least one neighbour in a different part, sorted
    /// ascending.
    pub boundary_nodes: Vec<NodeId>,
    /// Number of edges whose endpoints lie in different parts.
    pub edge_cut: usize,
}

/// Quality summary of a [`Partition`] (see [`Partition::stats`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionStats {
    /// Largest part size divided by the ideal `n / k`.
    pub balance: f64,
    /// `edge_cut / m`: the fraction of edges crossing parts.
    pub cut_fraction: f64,
    /// `boundary_nodes.len() / n`.
    pub boundary_fraction: f64,
    /// Whether every part induces a connected subgraph.
    pub parts_connected: bool,
}

impl Partition {
    /// Node count of each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }

    /// The nodes of part `p`, ascending — the canonical node order for
    /// building the part's induced subgraph (pinned by the sharded-serving
    /// bit-identity tests).
    pub fn part_nodes(&self, p: usize) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q == p)
            .map(|(v, _)| v)
            .collect()
    }

    /// The boundary nodes belonging to part `p`, ascending.
    pub fn boundary_of(&self, p: usize) -> Vec<NodeId> {
        self.boundary_nodes
            .iter()
            .copied()
            .filter(|&v| self.assignment[v] == p)
            .collect()
    }

    /// Quality summary against the graph the partition was computed on.
    pub fn stats(&self, g: &Graph) -> PartitionStats {
        let n = g.num_nodes().max(1);
        let m = g.num_edges().max(1);
        let ideal = n as f64 / self.num_parts as f64;
        let largest = self.part_sizes().into_iter().max().unwrap_or(0);
        let parts_connected = (0..self.num_parts).all(|p| {
            let nodes = self.part_nodes(p);
            !nodes.is_empty() && part_is_connected(g, &self.assignment, p, &nodes)
        });
        PartitionStats {
            balance: largest as f64 / ideal,
            cut_fraction: self.edge_cut as f64 / m as f64,
            boundary_fraction: self.boundary_nodes.len() as f64 / n as f64,
            parts_connected,
        }
    }
}

/// BFS within part `p` from `nodes[0]`, over edges internal to the part.
fn part_is_connected(g: &Graph, assignment: &[usize], p: usize, nodes: &[NodeId]) -> bool {
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = VecDeque::new();
    seen[nodes[0]] = true;
    queue.push_back(nodes[0]);
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if assignment[v] == p && !seen[v] {
                seen[v] = true;
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    reached == nodes.len()
}

/// BFS-seeded label-propagation partitioner.
///
/// ```
/// use er_graph::generators;
/// use er_graph::partition::{PartitionConfig, Partitioner};
///
/// let g = generators::social_network_like(400, 8.0, 7).unwrap();
/// let partition = Partitioner::new(PartitionConfig::with_parts(4))
///     .partition(&g)
///     .unwrap();
/// assert_eq!(partition.num_parts, 4);
/// assert_eq!(partition.assignment.len(), g.num_nodes());
/// let stats = partition.stats(&g);
/// assert!(stats.parts_connected);
/// assert!(stats.cut_fraction < 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Partitioner {
    config: PartitionConfig,
}

impl Partitioner {
    /// A partitioner with the given configuration.
    pub fn new(config: PartitionConfig) -> Partitioner {
        Partitioner { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> PartitionConfig {
        self.config
    }

    /// Partitions `g` into [`PartitionConfig::num_parts`] balanced,
    /// connected parts.
    ///
    /// Requires a connected graph ([`GraphError::NotConnected`] otherwise) —
    /// disconnected inputs have no meaningful boundary structure; extract the
    /// largest component first. `num_parts` is clamped to the node count;
    /// `num_parts <= 1` yields the trivial one-part partition.
    pub fn partition(&self, g: &Graph) -> Result<Partition, GraphError> {
        if g.num_nodes() == 0 {
            return Err(GraphError::Empty);
        }
        if !analysis::is_connected(g) {
            return Err(GraphError::NotConnected);
        }
        let n = g.num_nodes();
        let k = self.config.num_parts.clamp(1, n);
        if k == 1 {
            return Ok(finalize(g, vec![0; n], 1));
        }

        let seeds = spread_seeds(g, k);
        let mut assignment = grow_parts(g, &seeds);
        let cap = part_cap(n, k, self.config.balance_slack);
        label_propagation(g, &mut assignment, k, cap, self.config.sweeps);
        repair_connectivity(g, &mut assignment, k);
        rebalance(g, &mut assignment, k, cap);
        Ok(finalize(g, assignment, k))
    }
}

/// The balance cap: `ceil((1 + slack) · n / k)`, at least 1.
fn part_cap(n: usize, k: usize, slack: f64) -> usize {
    let ideal = n as f64 / k as f64;
    ((1.0 + slack.max(0.0)) * ideal).ceil().max(1.0) as usize
}

/// Farthest-point BFS seed spreading: the first seed is the highest-degree
/// node, each further seed the node maximising its BFS distance to all
/// chosen seeds (ties break toward higher degree, then lower id).
fn spread_seeds(g: &Graph, k: usize) -> Vec<NodeId> {
    let n = g.num_nodes();
    let first = (0..n)
        .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
        .expect("non-empty graph");
    let mut seeds = vec![first];
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    while seeds.len() < k {
        // Multi-source BFS distance to the nearest chosen seed.
        let newest = *seeds.last().expect("at least one seed");
        dist[newest] = 0;
        queue.push_back(newest);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if dist[v] > dist[u] + 1 {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        let next = (0..n)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| (dist[v], g.degree(v), std::cmp::Reverse(v)))
            .expect("k <= n leaves an unchosen node");
        seeds.push(next);
    }
    seeds
}

/// Balanced multi-source BFS growth: parts claim one unvisited node per
/// round-robin turn, so initial regions are connected and near-balanced.
fn grow_parts(g: &Graph, seeds: &[NodeId]) -> Vec<usize> {
    let n = g.num_nodes();
    let k = seeds.len();
    let mut assignment = vec![usize::MAX; n];
    let mut queues: Vec<VecDeque<NodeId>> =
        seeds.iter().map(|&s| VecDeque::from(vec![s])).collect();
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s] = p;
    }
    let mut remaining = n - k;
    while remaining > 0 {
        let mut progressed = false;
        for (p, queue) in queues.iter_mut().enumerate() {
            // Pop until this part claims one new node (or exhausts its
            // frontier for this round).
            while let Some(u) = queue.pop_front() {
                let mut claimed = false;
                for &v in g.neighbors(u) {
                    if assignment[v] == usize::MAX {
                        if claimed {
                            // Re-examine u later for its remaining
                            // unvisited neighbours.
                            queue.push_front(u);
                        } else {
                            assignment[v] = p;
                            queue.push_back(v);
                            remaining -= 1;
                            progressed = true;
                            claimed = true;
                            continue;
                        }
                        break;
                    }
                }
                if claimed {
                    break;
                }
            }
        }
        if !progressed {
            // Connected input ⇒ unreachable, but guard against livelock:
            // sweep leftovers onto an assigned neighbour (or part 0).
            for v in 0..n {
                if assignment[v] == usize::MAX {
                    assignment[v] = g
                        .neighbors(v)
                        .iter()
                        .map(|&u| assignment[u])
                        .find(|&p| p != usize::MAX)
                        .unwrap_or(0);
                    remaining -= 1;
                }
            }
        }
    }
    assignment
}

/// Label-propagation sweeps: move a node to its majority neighbour label
/// when that strictly reduces its cut edges, the target part has room and
/// the source part keeps at least one node. Deterministic: fixed node order,
/// ties break toward the lower part id.
fn label_propagation(g: &Graph, assignment: &mut [usize], k: usize, cap: usize, sweeps: usize) {
    let n = g.num_nodes();
    let mut sizes = vec![0usize; k];
    for &p in assignment.iter() {
        sizes[p] += 1;
    }
    let mut label_count = vec![0usize; k];
    for _ in 0..sweeps {
        let mut moved = false;
        for v in 0..n {
            let current = assignment[v];
            if sizes[current] <= 1 {
                continue;
            }
            for &u in g.neighbors(v) {
                label_count[assignment[u]] += 1;
            }
            let mut best = current;
            for p in 0..k {
                if p != current && sizes[p] < cap && label_count[p] > label_count[best] {
                    best = p;
                }
            }
            if best != current {
                assignment[v] = best;
                sizes[current] -= 1;
                sizes[best] += 1;
                moved = true;
            }
            // Neighbour assignments are untouched by v's move, so zeroing
            // the same cells the count pass incremented clears the scratch.
            for &u in g.neighbors(v) {
                label_count[assignment[u]] = 0;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Reassigns every non-largest connected component of each part to an
/// adjacent part, leaving all parts connected. Processing parts in order is
/// sufficient: a component attaches to its new part by at least one edge,
/// so parts already made connected stay connected.
fn repair_connectivity(g: &Graph, assignment: &mut [usize], k: usize) {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    for p in 0..k {
        // Component labelling within part p.
        for v in 0..n {
            if assignment[v] == p {
                comp[v] = usize::MAX;
            }
        }
        let mut comps: Vec<Vec<NodeId>> = Vec::new();
        for v in 0..n {
            if assignment[v] != p || comp[v] != usize::MAX {
                continue;
            }
            let id = comps.len();
            let mut members = vec![v];
            comp[v] = id;
            let mut queue = VecDeque::from(vec![v]);
            while let Some(u) = queue.pop_front() {
                for &w in g.neighbors(u) {
                    if assignment[w] == p && comp[w] == usize::MAX {
                        comp[w] = id;
                        members.push(w);
                        queue.push_back(w);
                    }
                }
            }
            comps.push(members);
        }
        if comps.len() <= 1 {
            continue;
        }
        let largest = comps
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.len(), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .expect("at least two components");
        for (i, members) in comps.iter().enumerate() {
            if i == largest {
                continue;
            }
            // The adjacent part with the most edges from this component
            // (connected input guarantees one exists).
            let mut votes = vec![0usize; k];
            for &v in members {
                for &u in g.neighbors(v) {
                    if assignment[u] != p {
                        votes[assignment[u]] += 1;
                    }
                }
            }
            let target = (0..k)
                .filter(|&q| q != p)
                .max_by_key(|&q| (votes[q], std::cmp::Reverse(q)))
                .expect("k >= 2");
            for &v in members {
                assignment[v] = target;
            }
        }
    }
}

/// Shrinks parts the connectivity repair pushed over the balance cap: one
/// boundary node at a time moves to an adjacent under-cap part, but only
/// when its removal keeps the source part connected (a move can only attach
/// to the target part through an edge, so targets stay connected for free).
/// Every move reduces total overflow by one, so the pass terminates; if no
/// connectivity-preserving move exists the overflow stands — connectedness
/// trumps balance.
fn rebalance(g: &Graph, assignment: &mut [usize], k: usize, cap: usize) {
    let n = g.num_nodes();
    let mut sizes = vec![0usize; k];
    for &p in assignment.iter() {
        sizes[p] += 1;
    }
    loop {
        let mut moved = false;
        for v in 0..n {
            let p = assignment[v];
            if sizes[p] <= cap || sizes[p] <= 1 {
                continue;
            }
            // The adjacent under-cap part with the most edges to v.
            let mut votes = vec![0usize; k];
            for &u in g.neighbors(v) {
                if assignment[u] != p {
                    votes[assignment[u]] += 1;
                }
            }
            let target = (0..k)
                .filter(|&q| q != p && sizes[q] < cap && votes[q] > 0)
                .max_by_key(|&q| (votes[q], std::cmp::Reverse(q)));
            let Some(target) = target else {
                continue;
            };
            // Only move if the source part stays connected without v.
            assignment[v] = target;
            let rest: Vec<NodeId> = (0..n).filter(|&u| assignment[u] == p).collect();
            if part_is_connected(g, assignment, p, &rest) {
                sizes[p] -= 1;
                sizes[target] += 1;
                moved = true;
            } else {
                assignment[v] = p;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Computes boundary nodes and the edge cut from a final assignment.
fn finalize(g: &Graph, assignment: Vec<usize>, num_parts: usize) -> Partition {
    let mut boundary_nodes = Vec::new();
    let mut edge_cut = 0usize;
    for v in g.nodes() {
        let mut on_boundary = false;
        for &u in g.neighbors(v) {
            if assignment[u] != assignment[v] {
                on_boundary = true;
                if v < u {
                    edge_cut += 1;
                }
            }
        }
        if on_boundary {
            boundary_nodes.push(v);
        }
    }
    Partition {
        num_parts,
        assignment,
        boundary_nodes,
        edge_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Brute-force edge-cut recount, independent of the partitioner's own
    /// bookkeeping.
    fn brute_force_cut(g: &Graph, assignment: &[usize]) -> usize {
        g.edges()
            .filter(|&(u, v)| assignment[u] != assignment[v])
            .count()
    }

    fn check_quality(g: &Graph, config: PartitionConfig) -> Partition {
        let partition = Partitioner::new(config).partition(g).unwrap();
        let n = g.num_nodes();
        let k = partition.num_parts;
        // Every node assigned exactly once, to a valid part.
        assert_eq!(partition.assignment.len(), n);
        assert!(partition.assignment.iter().all(|&p| p < k));
        let sizes = partition.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), n);
        assert!(sizes.iter().all(|&s| s > 0), "no empty parts: {sizes:?}");
        // part_nodes covers the node set disjointly.
        let mut covered = vec![false; n];
        for p in 0..k {
            for v in partition.part_nodes(p) {
                assert!(!covered[v], "node {v} in two parts");
                covered[v] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
        // Edge cut equals the brute-force recount.
        assert_eq!(
            partition.edge_cut,
            brute_force_cut(g, &partition.assignment)
        );
        // Boundary nodes are exactly the nodes with a cross-part neighbour.
        for v in g.nodes() {
            let crosses = g
                .neighbors(v)
                .iter()
                .any(|&u| partition.assignment[u] != partition.assignment[v]);
            assert_eq!(partition.boundary_nodes.contains(&v), crosses, "node {v}");
        }
        assert!(partition.boundary_nodes.windows(2).all(|w| w[0] < w[1]));
        partition
    }

    #[test]
    fn quality_on_barabasi_albert() {
        let g = generators::barabasi_albert(300, 3, 11).unwrap();
        for k in [2, 4] {
            let config = PartitionConfig::with_parts(k);
            let partition = check_quality(&g, config);
            let stats = partition.stats(&g);
            assert!(stats.parts_connected, "k={k}: parts must be connected");
            // Balance within the configured slack (repair may exceed the
            // cap, but on these graphs it does not).
            let cap = part_cap(g.num_nodes(), k, config.balance_slack);
            assert!(
                partition.part_sizes().iter().all(|&s| s <= cap),
                "k={k}: sizes {:?} exceed cap {cap}",
                partition.part_sizes()
            );
            assert!(stats.cut_fraction < 1.0);
        }
    }

    #[test]
    fn quality_on_watts_strogatz() {
        let g = generators::watts_strogatz(240, 6, 0.1, 5).unwrap();
        let config = PartitionConfig {
            num_parts: 3,
            ..PartitionConfig::default()
        };
        let partition = check_quality(&g, config);
        let stats = partition.stats(&g);
        assert!(stats.parts_connected);
        let cap = part_cap(g.num_nodes(), 3, config.balance_slack);
        assert!(partition.part_sizes().iter().all(|&s| s <= cap));
        // A ring-ish graph cut into 3 contiguous arcs should cut only a
        // small fraction of edges.
        assert!(
            stats.cut_fraction < 0.5,
            "cut fraction {} too large",
            stats.cut_fraction
        );
    }

    #[test]
    fn single_part_and_clamping() {
        let g = generators::complete(8).unwrap();
        let one = Partitioner::new(PartitionConfig::with_parts(1))
            .partition(&g)
            .unwrap();
        assert_eq!(one.num_parts, 1);
        assert_eq!(one.edge_cut, 0);
        assert!(one.boundary_nodes.is_empty());
        assert!(one.stats(&g).parts_connected);
        // More parts than nodes clamps to n.
        let many = Partitioner::new(PartitionConfig::with_parts(99))
            .partition(&g)
            .unwrap();
        assert_eq!(many.num_parts, 8);
        assert!(many.part_sizes().iter().all(|&s| s == 1));
    }

    #[test]
    fn partitioning_is_deterministic() {
        let g = generators::social_network_like(260, 7.0, 9).unwrap();
        let config = PartitionConfig::with_parts(4);
        let a = Partitioner::new(config).partition(&g).unwrap();
        let b = Partitioner::new(config).partition(&g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disconnected_and_empty_inputs_are_rejected() {
        let g = generators::star(4).unwrap();
        // Two disjoint stars.
        let mut b = crate::GraphBuilder::new(8);
        for (u, v) in g.edges() {
            b = b.add_edge(u, v).add_edge(u + 4, v + 4);
        }
        let disconnected = b.build().unwrap();
        assert!(matches!(
            Partitioner::new(PartitionConfig::with_parts(2)).partition(&disconnected),
            Err(GraphError::NotConnected)
        ));
    }
}
