//! Query-set generation for the paper's evaluation workloads.
//!
//! Section 5.1: "For each dataset, we pick 100 node pairs uniformly at random
//! as the random query set and randomly select 100 edges out of edge set E as
//! the edge query set." These helpers reproduce exactly that, deterministically
//! given a seed.

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single `(s, t)` query pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryPair {
    /// Source node `s`.
    pub s: NodeId,
    /// Target node `t`.
    pub t: NodeId,
}

impl QueryPair {
    /// Creates a query pair.
    pub fn new(s: NodeId, t: NodeId) -> Self {
        QueryPair { s, t }
    }
}

/// A set of uniformly random node pairs (the paper's "random query set").
#[derive(Clone, Debug)]
pub struct NodePairQuerySet {
    pairs: Vec<QueryPair>,
}

impl NodePairQuerySet {
    /// Samples `count` node pairs uniformly at random (with `s != t`).
    ///
    /// Pairs may repeat across draws, matching uniform sampling with
    /// replacement over the `n(n-1)` ordered pairs.
    pub fn uniform(g: &Graph, count: usize, seed: u64) -> Self {
        let n = g.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(count);
        while pairs.len() < count {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s != t {
                pairs.push(QueryPair::new(s, t));
            }
        }
        NodePairQuerySet { pairs }
    }

    /// The query pairs.
    pub fn pairs(&self) -> &[QueryPair] {
        &self.pairs
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// A set of query pairs drawn uniformly from the edge set (the paper's
/// "edge query set", used by MC2 and HAY).
#[derive(Clone, Debug)]
pub struct EdgeQuerySet {
    pairs: Vec<QueryPair>,
}

impl EdgeQuerySet {
    /// Samples `count` edges uniformly at random (with replacement) from `E`.
    pub fn uniform(g: &Graph, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Sample a directed arc index uniformly from 0..2m and take the edge it
        // belongs to; every undirected edge has exactly two arcs, so edges are
        // uniform. Arc -> (u, v) is resolved by locating the owning node via
        // binary search over the CSR offsets.
        let (offsets, neighbors) = g.csr();
        let arcs = neighbors.len();
        let mut pairs = Vec::with_capacity(count);
        while pairs.len() < count && arcs > 0 {
            let a = rng.gen_range(0..arcs);
            // owner u: largest u with offsets[u] <= a
            let u = match offsets.binary_search(&a) {
                Ok(mut i) => {
                    // skip over zero-degree nodes that share the same offset
                    while i + 1 < offsets.len() && offsets[i + 1] == a {
                        i += 1;
                    }
                    i
                }
                Err(i) => i - 1,
            };
            let v = neighbors[a];
            pairs.push(QueryPair::new(u, v));
        }
        EdgeQuerySet { pairs }
    }

    /// The query pairs. Every pair is guaranteed to be an edge of the graph.
    pub fn pairs(&self) -> &[QueryPair] {
        &self.pairs
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn node_pairs_are_distinct_endpoints_and_deterministic() {
        let g = generators::barabasi_albert(300, 4, 9).unwrap();
        let q1 = NodePairQuerySet::uniform(&g, 100, 7);
        let q2 = NodePairQuerySet::uniform(&g, 100, 7);
        assert_eq!(q1.len(), 100);
        assert!(!q1.is_empty());
        assert_eq!(q1.pairs(), q2.pairs(), "same seed gives same queries");
        for p in q1.pairs() {
            assert_ne!(p.s, p.t);
            assert!(p.s < g.num_nodes() && p.t < g.num_nodes());
        }
        let q3 = NodePairQuerySet::uniform(&g, 100, 8);
        assert_ne!(
            q1.pairs(),
            q3.pairs(),
            "different seed gives different queries"
        );
    }

    #[test]
    fn edge_queries_are_actual_edges() {
        let g = generators::barabasi_albert(300, 4, 9).unwrap();
        let q = EdgeQuerySet::uniform(&g, 100, 21);
        assert_eq!(q.len(), 100);
        for p in q.pairs() {
            assert!(g.has_edge(p.s, p.t), "({}, {}) must be an edge", p.s, p.t);
        }
    }

    #[test]
    fn edge_queries_cover_different_edges() {
        let g = generators::complete(30).unwrap();
        let q = EdgeQuerySet::uniform(&g, 200, 5);
        let distinct: std::collections::HashSet<_> = q
            .pairs()
            .iter()
            .map(|p| if p.s < p.t { (p.s, p.t) } else { (p.t, p.s) })
            .collect();
        assert!(
            distinct.len() > 50,
            "sampling should touch many distinct edges"
        );
    }

    #[test]
    fn edge_queries_on_star_always_touch_hub() {
        let g = generators::star(50).unwrap();
        let q = EdgeQuerySet::uniform(&g, 64, 3);
        for p in q.pairs() {
            assert!(p.s == 0 || p.t == 0);
            assert!(g.has_edge(p.s, p.t));
        }
    }
}
