//! SNAP-style edge-list input/output.
//!
//! The SNAP datasets used in the paper's evaluation are plain-text files with
//! one whitespace-separated `u v` pair per line and `#`-prefixed comment
//! lines. [`read_edge_list`] accepts that format (and arbitrary non-contiguous
//! node ids, which are compacted to `0..n`), so the real datasets can be
//! dropped into the benchmark harness unchanged.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads an undirected graph from a SNAP-style edge list.
///
/// * Lines starting with `#` or `%` are comments.
/// * Blank lines are skipped.
/// * Node ids may be arbitrary `u64`s; they are compacted to `0..n` in first-
///   appearance order. The mapping is discarded (the estimators only need the
///   structure); use [`read_edge_list_with_mapping`] to keep it.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    read_edge_list_with_mapping(path).map(|(g, _)| g)
}

/// Like [`read_edge_list`] but also returns `original id -> compact id`.
pub fn read_edge_list_with_mapping(
    path: impl AsRef<Path>,
) -> Result<(Graph, HashMap<u64, usize>), GraphError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    parse_edge_list(reader)
}

/// Parses an edge list from any reader (exposed for tests and in-memory data).
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<(Graph, HashMap<u64, usize>), GraphError> {
    let mut mapping: HashMap<u64, usize> = HashMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: idx + 1,
                    message: format!("expected two node ids, got '{trimmed}'"),
                })
            }
        };
        let parse = |tok: &str| -> Result<u64, GraphError> {
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: idx + 1,
                message: format!("'{tok}' is not a non-negative integer"),
            })
        };
        let (a, b) = (parse(a)?, parse(b)?);
        let next_id = mapping.len();
        let ua = *mapping.entry(a).or_insert(next_id);
        let next_id = mapping.len();
        let ub = *mapping.entry(b).or_insert(next_id);
        edges.push((ua, ub));
    }
    if mapping.is_empty() {
        return Err(GraphError::Empty);
    }
    let g = GraphBuilder::from_edges(mapping.len(), edges).build()?;
    Ok((g, mapping))
}

/// Writes a graph as a SNAP-style edge list (one `u v` line per undirected
/// edge, plus a comment header with the node/edge counts).
pub fn write_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::io::Cursor;

    #[test]
    fn parse_simple_edge_list() {
        let data = "# a comment\n0 1\n1 2\n\n2 0\n";
        let (g, mapping) = parse_edge_list(Cursor::new(data)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(mapping.len(), 3);
    }

    #[test]
    fn parse_compacts_sparse_ids() {
        let data = "1000 42\n42 7\n7 1000\n";
        let (g, mapping) = parse_edge_list(Cursor::new(data)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(mapping.contains_key(&1000));
        assert!(mapping.contains_key(&42));
        assert!(mapping.contains_key(&7));
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_edge_list(Cursor::new("0 1\nfoo bar\n")).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
        let err = parse_edge_list(Cursor::new("0\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_empty_input() {
        let err = parse_edge_list(Cursor::new("# only comments\n")).unwrap_err();
        assert!(matches!(err, GraphError::Empty));
    }

    #[test]
    fn roundtrip_through_file() {
        let g = generators::barabasi_albert(200, 3, 17).unwrap();
        let dir = std::env::temp_dir().join("er_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&g, &path).unwrap();
        let h = read_edge_list(&path).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        let mut gd = g.degrees();
        let mut hd = h.degrees();
        gd.sort_unstable();
        hd.sort_unstable();
        assert_eq!(gd, hd);
        std::fs::remove_file(&path).ok();
    }
}
