//! Edge-list accumulator that produces an immutable [`Graph`].
//!
//! The builder accepts edges in any order, removes self-loops, deduplicates
//! parallel edges and relabels nothing: node ids must already be `0..n`.
//! Use [`GraphBuilder::from_edges`] for the common "I have a `Vec<(u, v)>`"
//! case, or [`crate::analysis::largest_connected_component`] afterwards to
//! obtain the connected graph the ER estimators require.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// Incremental builder for [`Graph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder seeded with an edge list. The number of nodes is
    /// `max(n, largest endpoint + 1)`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b = b.add_edge(u, v);
        }
        b
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently ignored;
    /// duplicates are removed at [`build`](Self::build) time. Node ids beyond
    /// the current node count grow the graph.
    #[must_use]
    pub fn add_edge(mut self, u: NodeId, v: NodeId) -> Self {
        if u == v {
            return self;
        }
        self.n = self.n.max(u + 1).max(v + 1);
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        self
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (possibly duplicated) edges added so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the graph: deduplicates edges and assembles the CSR arrays.
    ///
    /// Returns [`GraphError::Empty`] if the graph would have zero nodes.
    pub fn build(mut self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let m = self.edges.len();

        // Counting sort of the 2m directed arcs into CSR form.
        let mut degree = vec![0usize; n];
        for &(u, v) in &self.edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; 2 * m];
        for &(u, v) in &self.edges {
            neighbors[cursor[u]] = v;
            cursor[u] += 1;
            neighbors[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Each adjacency slice must be sorted for `has_edge` binary searches.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(Graph::from_csr(offsets, neighbors, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_rejected() {
        assert!(matches!(
            GraphBuilder::new(0).build(),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn isolated_nodes_are_allowed() {
        let g = GraphBuilder::new(3).add_edge(0, 1).build().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn self_loops_and_duplicates_are_removed() {
        let g = GraphBuilder::new(2)
            .add_edge(0, 0)
            .add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn node_count_grows_with_edges() {
        let b = GraphBuilder::new(1).add_edge(4, 2);
        assert_eq!(b.num_nodes(), 5);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.has_edge(2, 4));
    }

    #[test]
    fn from_edges_matches_incremental() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let g1 = GraphBuilder::from_edges(4, edges.clone()).build().unwrap();
        let mut b = GraphBuilder::new(4);
        for (u, v) in edges {
            b = b.add_edge(u, v);
        }
        let g2 = b.build().unwrap();
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.nodes() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn csr_invariants_hold() {
        let g = GraphBuilder::from_edges(6, vec![(5, 0), (3, 1), (0, 3), (4, 2), (1, 0)])
            .build()
            .unwrap();
        let (offsets, neighbors) = g.csr();
        assert_eq!(offsets.len(), g.num_nodes() + 1);
        assert_eq!(*offsets.last().unwrap(), neighbors.len());
        assert_eq!(neighbors.len(), 2 * g.num_edges());
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
            assert!(!nbrs.contains(&v), "no self loops");
        }
    }
}
