//! Structural graph transformations.
//!
//! The estimators themselves never mutate a [`Graph`], but several downstream
//! components do need derived graphs:
//!
//! * the sparsification pipeline removes and re-weights edges,
//! * the robustness / cascading-failure analyses delete edges and re-query,
//! * the dynamic-graph index rebuilds a graph after edge insertions/deletions,
//! * the spanning-tree identity `r(s, t) = |T(G')| / |T(G)|` (Corollary 4.2 of
//!   \[40\] in the paper) needs the graph `G'` obtained by identifying `s` and
//!   `t`,
//! * k-core pruning is a common preprocessing step before similarity search.
//!
//! Every transform returns a fresh [`Graph`] (the CSR representation is
//! immutable by design) together with whatever node mapping is needed to
//! translate ids back to the original graph.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// The two-way node mapping of an induced subgraph: local (subgraph) ids to
/// the original (global) ids and back.
///
/// The reverse direction is a dense `O(1)` lookup over the *original* node
/// range, so routing layers that translate ids on every query (the sharded
/// serving plane) never rebuild a hash map per lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubgraphMap {
    /// `to_global[local] = global`, in the subgraph's id order.
    to_global: Vec<NodeId>,
    /// `to_local[global] = local`, `usize::MAX` for nodes not in the
    /// subgraph.
    to_local: Vec<usize>,
}

impl SubgraphMap {
    /// Builds the map from a forward mapping (`to_global[local] = global`)
    /// and the original node count — the helper for callers holding a plain
    /// `Vec<NodeId>` mapping from elsewhere (e.g.
    /// [`analysis::largest_connected_component`](crate::analysis::largest_connected_component)).
    ///
    /// # Panics
    /// Panics if any mapped id is `>= original_nodes`.
    pub fn from_forward(to_global: Vec<NodeId>, original_nodes: usize) -> SubgraphMap {
        let mut to_local = vec![usize::MAX; original_nodes];
        for (local, &global) in to_global.iter().enumerate() {
            to_local[global] = local;
        }
        SubgraphMap {
            to_global,
            to_local,
        }
    }

    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Whether the subgraph is empty (never true for maps produced by
    /// [`induced_subgraph`], which rejects empty node sets).
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }

    /// The original id of subgraph node `local`.
    ///
    /// # Panics
    /// Panics if `local` is out of range for the subgraph.
    pub fn global_of(&self, local: NodeId) -> NodeId {
        self.to_global[local]
    }

    /// The subgraph id of original node `global`, or `None` if the node is
    /// not part of the subgraph (or out of range for the original graph).
    pub fn local_of(&self, global: NodeId) -> Option<NodeId> {
        match self.to_local.get(global) {
            Some(&local) if local != usize::MAX => Some(local),
            _ => None,
        }
    }

    /// The forward mapping as a slice: `to_global()[local] = global`.
    pub fn to_global(&self) -> &[NodeId] {
        &self.to_global
    }
}

/// The induced subgraph on `nodes`, plus the two-way [`SubgraphMap`] between
/// subgraph ids and original ids.
///
/// Nodes may be listed in any order; duplicates are ignored. The resulting
/// graph relabels the kept nodes to `0..k` in the order of first appearance.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Result<(Graph, SubgraphMap), GraphError> {
    let mut new_id = vec![usize::MAX; g.num_nodes()];
    let mut mapping = Vec::new();
    for &v in nodes {
        g.check_node(v)?;
        if new_id[v] == usize::MAX {
            new_id[v] = mapping.len();
            mapping.push(v);
        }
    }
    if mapping.is_empty() {
        return Err(GraphError::Empty);
    }
    let mut builder = GraphBuilder::new(mapping.len());
    for (new_u, &old_u) in mapping.iter().enumerate() {
        for &old_v in g.neighbors(old_u) {
            let new_v = new_id[old_v];
            if new_v != usize::MAX && new_u < new_v {
                builder = builder.add_edge(new_u, new_v);
            }
        }
    }
    let sub = builder.build()?;
    // `new_id` is exactly the reverse lookup; hand it over instead of
    // discarding and rebuilding it.
    Ok((
        sub,
        SubgraphMap {
            to_global: mapping,
            to_local: new_id,
        },
    ))
}

/// A copy of `g` with the listed undirected edges removed.
///
/// Edges may be given in either orientation; edges not present in `g` are
/// ignored. The node set is unchanged, so the result may be disconnected or
/// contain isolated nodes — callers that need ergodicity should re-validate.
pub fn remove_edges(g: &Graph, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
    let normalize = |(u, v): (NodeId, NodeId)| if u < v { (u, v) } else { (v, u) };
    let mut removed: Vec<(NodeId, NodeId)> = edges.iter().copied().map(normalize).collect();
    removed.sort_unstable();
    removed.dedup();
    let kept = g
        .edges()
        .filter(|&e| removed.binary_search(&normalize(e)).is_err());
    GraphBuilder::from_edges(g.num_nodes(), kept).build()
}

/// A copy of `g` with the listed undirected edges added (duplicates and
/// self-loops are ignored, exactly as in [`GraphBuilder`]).
pub fn add_edges(g: &Graph, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
    let mut builder = GraphBuilder::from_edges(g.num_nodes(), g.edges());
    for &(u, v) in edges {
        builder = builder.add_edge(u, v);
    }
    builder.build()
}

/// The graph obtained by identifying (merging) nodes `s` and `t` into a single
/// node, as used by the spanning-tree characterisation of effective
/// resistance: `r(s, t) = |T(G/{s,t})| / |T(G)|`.
///
/// The merged node keeps the id `min(s, t)`; every other node above
/// `max(s, t)` shifts down by one. Parallel edges created by the merge are
/// collapsed (the [`Graph`] type is simple), which is the correct behaviour
/// for spanning-tree *membership* questions but changes counts for
/// multigraph-sensitive quantities; callers needing multiplicities should work
/// from the returned mapping.
///
/// Returns the contracted graph and the mapping `old id -> new id`.
pub fn contract_pair(g: &Graph, s: NodeId, t: NodeId) -> Result<(Graph, Vec<NodeId>), GraphError> {
    g.check_node(s)?;
    g.check_node(t)?;
    if s == t {
        let identity: Vec<NodeId> = (0..g.num_nodes()).collect();
        let copy = GraphBuilder::from_edges(g.num_nodes(), g.edges()).build()?;
        return Ok((copy, identity));
    }
    let (keep, drop) = if s < t { (s, t) } else { (t, s) };
    let mut mapping = Vec::with_capacity(g.num_nodes());
    for v in 0..g.num_nodes() {
        if v == drop {
            mapping.push(keep);
        } else if v > drop {
            mapping.push(v - 1);
        } else {
            mapping.push(v);
        }
    }
    let edges = g
        .edges()
        .map(|(u, v)| (mapping[u], mapping[v]))
        .filter(|&(u, v)| u != v);
    Ok((
        GraphBuilder::from_edges(g.num_nodes() - 1, edges).build()?,
        mapping,
    ))
}

/// Core number (largest `k` such that the node belongs to the `k`-core) of
/// every node, computed with the standard peeling algorithm in `O(n + m)`.
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort nodes by degree (bin[d] = start offset of degree-d nodes).
    let mut bin = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin[d + 1] += 1;
    }
    for d in 0..=max_degree {
        bin[d + 1] += bin[d];
    }
    let mut position = vec![0usize; n];
    let mut order = vec![0usize; n];
    let mut next = bin.clone();
    for v in 0..n {
        let d = degree[v];
        position[v] = next[d];
        order[next[d]] = v;
        next[d] += 1;
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = order[i];
        core[v] = degree[v];
        for &u in g.neighbors(v) {
            if degree[u] > degree[v] {
                // Move u into the bucket one lower: swap it with the first
                // node of its current bucket, then shrink that bucket.
                let du = degree[u];
                let pu = position[u];
                let pw = bin[du];
                let w = order[pw];
                if u != w {
                    order[pu] = w;
                    order[pw] = u;
                    position[u] = pw;
                    position[w] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The `k`-core of `g`: the maximal induced subgraph in which every node has
/// degree at least `k`, together with the two-way node [`SubgraphMap`].
///
/// Returns [`GraphError::Empty`] if no node survives the peeling.
pub fn k_core(g: &Graph, k: usize) -> Result<(Graph, SubgraphMap), GraphError> {
    let core = core_numbers(g);
    let survivors: Vec<NodeId> = (0..g.num_nodes()).filter(|&v| core[v] >= k).collect();
    induced_subgraph(g, &survivors)
}

/// Degeneracy of the graph: the largest `k` for which a non-empty `k`-core
/// exists (0 for edgeless graphs).
pub fn degeneracy(g: &Graph) -> usize {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::generators;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = generators::complete(6).unwrap();
        let (sub, mapping) = induced_subgraph(&g, &[1, 3, 5]).unwrap();
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3, "K_3 among the kept nodes");
        assert_eq!(mapping.to_global(), &[1, 3, 5]);
        // The reverse lookup inverts the forward mapping and rejects
        // everything else.
        assert_eq!(mapping.len(), 3);
        assert!(!mapping.is_empty());
        for (local, &global) in mapping.to_global().iter().enumerate() {
            assert_eq!(mapping.global_of(local), global);
            assert_eq!(mapping.local_of(global), Some(local));
        }
        assert_eq!(mapping.local_of(0), None, "dropped node");
        assert_eq!(mapping.local_of(99), None, "out of range");
    }

    #[test]
    fn subgraph_map_from_forward_matches_induced() {
        let g = generators::complete(6).unwrap();
        let (_, mapping) = induced_subgraph(&g, &[4, 0, 2]).unwrap();
        let rebuilt = SubgraphMap::from_forward(vec![4, 0, 2], 6);
        assert_eq!(rebuilt, mapping);
    }

    #[test]
    fn induced_subgraph_dedups_and_validates() {
        let g = generators::path(4).unwrap();
        let (sub, mapping) = induced_subgraph(&g, &[2, 2, 1]).unwrap();
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(mapping.to_global(), &[2, 1]);
        assert!(induced_subgraph(&g, &[9]).is_err());
        assert!(induced_subgraph(&g, &[]).is_err());
    }

    #[test]
    fn remove_edges_drops_only_listed_edges() {
        let g = generators::cycle(5).unwrap();
        let reduced = remove_edges(&g, &[(1, 0), (7, 8)]).unwrap();
        assert_eq!(reduced.num_edges(), 4);
        assert!(!reduced.has_edge(0, 1));
        assert!(reduced.has_edge(1, 2));
        // Removing nothing yields an identical edge set.
        let same = remove_edges(&g, &[]).unwrap();
        assert_eq!(same.num_edges(), g.num_edges());
    }

    #[test]
    fn add_edges_grows_edge_set() {
        let g = generators::path(4).unwrap();
        let denser = add_edges(&g, &[(0, 3), (0, 3), (1, 1)]).unwrap();
        assert_eq!(denser.num_edges(), g.num_edges() + 1);
        assert!(denser.has_edge(0, 3));
    }

    #[test]
    fn contract_pair_merges_endpoints() {
        // Path 0-1-2-3; contracting (1, 2) gives a path on 3 nodes.
        let g = generators::path(4).unwrap();
        let (contracted, mapping) = contract_pair(&g, 2, 1).unwrap();
        assert_eq!(contracted.num_nodes(), 3);
        assert_eq!(contracted.num_edges(), 2);
        assert_eq!(mapping, vec![0, 1, 1, 2]);
        assert!(analysis::is_connected(&contracted));
    }

    #[test]
    fn contract_pair_with_identical_nodes_is_a_copy() {
        let g = generators::cycle(5).unwrap();
        let (copy, mapping) = contract_pair(&g, 3, 3).unwrap();
        assert_eq!(copy.num_nodes(), 5);
        assert_eq!(copy.num_edges(), 5);
        assert_eq!(mapping, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn contract_pair_collapses_parallel_edges() {
        // Triangle: contracting one edge leaves a single edge (the two
        // parallel edges produced by the merge collapse into one).
        let g = generators::complete(3).unwrap();
        let (contracted, _) = contract_pair(&g, 0, 1).unwrap();
        assert_eq!(contracted.num_nodes(), 2);
        assert_eq!(contracted.num_edges(), 1);
    }

    #[test]
    fn core_numbers_of_known_graphs() {
        // A clique of size k has core number k-1 everywhere.
        let g = generators::complete(5).unwrap();
        assert_eq!(core_numbers(&g), vec![4; 5]);
        assert_eq!(degeneracy(&g), 4);

        // A star has core number 1 everywhere.
        let star = generators::star(6).unwrap();
        assert_eq!(core_numbers(&star), vec![1; star.num_nodes()]);
        assert_eq!(degeneracy(&star), 1);

        // Lollipop: clique nodes have core clique-1, tail nodes core 1.
        let lolly = generators::lollipop(4, 3).unwrap();
        let core = core_numbers(&lolly);
        assert!(core[..4].iter().all(|&c| c == 3));
        assert!(core[4..].iter().all(|&c| c == 1));
    }

    #[test]
    fn k_core_peels_the_tail() {
        let lolly = generators::lollipop(5, 4).unwrap();
        let (core2, mapping) = k_core(&lolly, 2).unwrap();
        assert_eq!(core2.num_nodes(), 5, "only the clique survives the 2-core");
        assert!(mapping.to_global().iter().all(|&old| old < 5));
        assert!(k_core(&lolly, 5).is_err(), "no node has degree >= 5");
    }

    #[test]
    fn core_numbers_never_exceed_degree() {
        let g = generators::barabasi_albert(300, 4, 11).unwrap();
        let core = core_numbers(&g);
        for v in g.nodes() {
            assert!(core[v] <= g.degree(v));
            assert!(core[v] >= 1, "BA graphs are connected");
        }
        let d = degeneracy(&g);
        assert!(core.contains(&d));
    }
}
