//! Property-based tests spanning the whole stack: random graphs in,
//! invariants of effective resistance and of the estimators out.
//!
//! Written as seeded randomized property checks (the build environment has no
//! crates.io access, so `proptest` is unavailable); each property runs over a
//! deterministic family of random graphs, so failures are reproducible.

use effective_resistance::graph::{analysis, generators, Graph, GraphBuilder};
use effective_resistance::{
    ApproxConfig, Geer, GraphContext, GroundTruth, GroundTruthMethod, ResistanceEstimator, Smm,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// A connected, non-bipartite graph built from a random edge list on up to
/// `max_nodes` nodes (a random spanning-path backbone plus extra random edges
/// plus one triangle to break bipartiteness).
fn arbitrary_graph(rng: &mut StdRng, max_nodes: usize) -> Graph {
    let n = rng.gen_range(4..max_nodes);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b = b.add_edge(v - 1, v); // backbone keeps it connected
    }
    b = b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2); // triangle
    let extra = rng.gen_range(0..(3 * n));
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b = b.add_edge(u, v);
        }
    }
    b.build().expect("non-empty")
}

#[test]
fn generated_graphs_satisfy_standing_assumptions() {
    let mut rng = StdRng::seed_from_u64(0xa0);
    for _ in 0..CASES {
        let g = arbitrary_graph(&mut rng, 60);
        assert!(analysis::is_connected(&g));
        assert!(!analysis::is_bipartite(&g));
        assert!(analysis::validate_ergodic(&g).is_ok());
    }
}

#[test]
fn exact_resistance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0xa1);
    for _ in 0..CASES {
        let g = arbitrary_graph(&mut rng, 40);
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let n = g.num_nodes();
        let (a, b, c) = (0, n / 2, n - 1);
        let rab = truth.resistance(a, b).unwrap();
        let rbc = truth.resistance(b, c).unwrap();
        let rac = truth.resistance(a, c).unwrap();
        // non-negativity, identity, symmetry, triangle inequality
        assert!(rab >= -1e-12 && rbc >= -1e-12 && rac >= -1e-12);
        assert_eq!(truth.resistance(a, a).unwrap(), 0.0);
        let rba = truth.resistance(b, a).unwrap();
        assert!((rab - rba).abs() < 1e-7);
        if a != b && b != c && a != c {
            assert!(rac <= rab + rbc + 1e-7);
        }
    }
}

#[test]
fn foster_theorem_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xa2);
    for _ in 0..CASES {
        let g = arbitrary_graph(&mut rng, 30);
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let total: f64 = g
            .edges()
            .map(|(u, v)| truth.resistance(u, v).unwrap())
            .sum();
        let expected = (g.num_nodes() - 1) as f64;
        assert!(
            (total - expected).abs() < 1e-5 * expected.max(1.0),
            "Foster sum {total} vs {expected}"
        );
    }
}

#[test]
fn smm_meets_epsilon_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xa3);
    for seed in 0..CASES {
        let g = arbitrary_graph(&mut rng, 40);
        let ctx = GraphContext::preprocess(&g).unwrap();
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let epsilon = 0.2;
        let mut smm = Smm::new(&ctx, ApproxConfig::with_epsilon(epsilon).reseeded(seed));
        let n = g.num_nodes();
        let (s, t) = (seed as usize % n, (seed as usize * 7 + 1) % n);
        let estimate = smm.estimate(s, t).unwrap().value;
        let exact = truth.resistance(s, t).unwrap();
        assert!(
            (estimate - exact).abs() <= epsilon,
            "SMM r({s},{t}) = {estimate} vs exact {exact}"
        );
    }
}

#[test]
fn geer_meets_epsilon_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xa4);
    for seed in 0..CASES {
        let g = arbitrary_graph(&mut rng, 40);
        let ctx = GraphContext::preprocess(&g).unwrap();
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let epsilon = 0.35;
        let mut geer = Geer::new(&ctx, ApproxConfig::with_epsilon(epsilon).reseeded(seed));
        let n = g.num_nodes();
        let (s, t) = ((seed as usize * 3) % n, (seed as usize * 11 + 2) % n);
        let estimate = geer.estimate(s, t).unwrap().value;
        let exact = truth.resistance(s, t).unwrap();
        // Theorem 3.4 gives a 1 - delta probability guarantee; with delta =
        // 0.01 per query and ~24 cases a failure would be a <1/4 chance of a
        // single violation across the whole suite if the implementation were
        // only just meeting the bound — in practice the bound is loose and
        // this assertion is stable.
        assert!(
            (estimate - exact).abs() <= epsilon,
            "GEER r({s},{t}) = {estimate} vs exact {exact}"
        );
    }
}

#[test]
fn rayleigh_monotonicity_under_random_edge_addition() {
    let mut rng = StdRng::seed_from_u64(0xa5);
    let mut checked = 0;
    while checked < CASES {
        let g = arbitrary_graph(&mut rng, 35);
        let n = g.num_nodes();
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if u == v || g.has_edge(u, v) {
            continue; // analogue of prop_assume!
        }
        checked += 1;
        let truth_before = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let denser = GraphBuilder::from_edges(n, g.edges().chain(std::iter::once((u, v))))
            .build()
            .unwrap();
        let truth_after = GroundTruth::with_method(&denser, GroundTruthMethod::LaplacianSolve);
        let (s, t) = (0, n - 1);
        let before = truth_before.resistance(s, t).unwrap();
        let after = truth_after.resistance(s, t).unwrap();
        assert!(
            after <= before + 1e-7,
            "adding ({u},{v}) raised r: {before} -> {after}"
        );
    }
}

#[test]
fn path_graph_resistance_is_hop_distance() {
    // The path graph is bipartite, so the estimators refuse it; but the
    // solver-based ground truth is still defined and must match |a - b|.
    let mut rng = StdRng::seed_from_u64(0xa6);
    for _ in 0..CASES {
        let len = rng.gen_range(2..30usize);
        let (a, b) = (rng.gen_range(0..len), rng.gen_range(0..len));
        let g = generators::path(len).unwrap();
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let r = truth.resistance(a, b).unwrap();
        assert!((r - (a as f64 - b as f64).abs()).abs() < 1e-6);
    }
}
