//! Property-based tests (proptest) spanning the whole stack: random graphs in,
//! invariants of effective resistance and of the estimators out.

use effective_resistance::graph::{analysis, generators, Graph, GraphBuilder};
use effective_resistance::{
    ApproxConfig, Geer, GraphContext, GroundTruth, GroundTruthMethod, ResistanceEstimator, Smm,
};
use proptest::prelude::*;

/// Strategy: a connected, non-bipartite graph built from a random edge list on
/// `n` nodes (a random spanning-path backbone plus extra random edges plus one
/// triangle to break bipartiteness).
fn arbitrary_graph(max_nodes: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_nodes)
        .prop_flat_map(|n| {
            let extra_edges = proptest::collection::vec((0..n, 0..n), 0..(3 * n));
            (Just(n), extra_edges)
        })
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                b = b.add_edge(v - 1, v); // backbone keeps it connected
            }
            b = b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2); // triangle
            for (u, v) in extra {
                if u != v {
                    b = b.add_edge(u, v);
                }
            }
            b.build().expect("non-empty")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn generated_graphs_satisfy_standing_assumptions(g in arbitrary_graph(60)) {
        prop_assert!(analysis::is_connected(&g));
        prop_assert!(!analysis::is_bipartite(&g));
        prop_assert!(analysis::validate_ergodic(&g).is_ok());
    }

    #[test]
    fn exact_resistance_is_a_metric(g in arbitrary_graph(40)) {
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let n = g.num_nodes();
        let (a, b, c) = (0, n / 2, n - 1);
        let rab = truth.resistance(a, b).unwrap();
        let rbc = truth.resistance(b, c).unwrap();
        let rac = truth.resistance(a, c).unwrap();
        // non-negativity, identity, symmetry, triangle inequality
        prop_assert!(rab >= -1e-12 && rbc >= -1e-12 && rac >= -1e-12);
        prop_assert_eq!(truth.resistance(a, a).unwrap(), 0.0);
        let rba = truth.resistance(b, a).unwrap();
        prop_assert!((rab - rba).abs() < 1e-7);
        if a != b && b != c && a != c {
            prop_assert!(rac <= rab + rbc + 1e-7);
        }
    }

    #[test]
    fn foster_theorem_on_random_graphs(g in arbitrary_graph(30)) {
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let total: f64 = g.edges().map(|(u, v)| truth.resistance(u, v).unwrap()).sum();
        let expected = (g.num_nodes() - 1) as f64;
        prop_assert!((total - expected).abs() < 1e-5 * expected.max(1.0),
            "Foster sum {} vs {}", total, expected);
    }

    #[test]
    fn smm_meets_epsilon_on_random_graphs(g in arbitrary_graph(40), seed in 0u64..1000) {
        let ctx = GraphContext::preprocess(&g).unwrap();
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let epsilon = 0.2;
        let mut smm = Smm::new(&ctx, ApproxConfig::with_epsilon(epsilon).reseeded(seed));
        let n = g.num_nodes();
        let (s, t) = (seed as usize % n, (seed as usize * 7 + 1) % n);
        let estimate = smm.estimate(s, t).unwrap().value;
        let exact = truth.resistance(s, t).unwrap();
        prop_assert!((estimate - exact).abs() <= epsilon,
            "SMM r({},{}) = {} vs exact {}", s, t, estimate, exact);
    }

    #[test]
    fn geer_meets_epsilon_on_random_graphs(g in arbitrary_graph(40), seed in 0u64..1000) {
        let ctx = GraphContext::preprocess(&g).unwrap();
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let epsilon = 0.35;
        let mut geer = Geer::new(&ctx, ApproxConfig::with_epsilon(epsilon).reseeded(seed));
        let n = g.num_nodes();
        let (s, t) = ((seed as usize * 3) % n, (seed as usize * 11 + 2) % n);
        let estimate = geer.estimate(s, t).unwrap().value;
        let exact = truth.resistance(s, t).unwrap();
        // Theorem 3.4 gives a 1 - delta probability guarantee; with delta =
        // 0.01 per query and ~24 cases a failure would be a <1/4 chance of a
        // single violation across the whole suite if the implementation were
        // only just meeting the bound — in practice the bound is loose and
        // this assertion is stable.
        prop_assert!((estimate - exact).abs() <= epsilon,
            "GEER r({},{}) = {} vs exact {}", s, t, estimate, exact);
    }

    #[test]
    fn rayleigh_monotonicity_under_random_edge_addition(
        g in arbitrary_graph(35),
        extra_u in 0usize..35,
        extra_v in 0usize..35,
    ) {
        let n = g.num_nodes();
        let (u, v) = (extra_u % n, extra_v % n);
        prop_assume!(u != v && !g.has_edge(u, v));
        let truth_before = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let denser = GraphBuilder::from_edges(n, g.edges().chain(std::iter::once((u, v))))
            .build()
            .unwrap();
        let truth_after = GroundTruth::with_method(&denser, GroundTruthMethod::LaplacianSolve);
        let (s, t) = (0, n - 1);
        let before = truth_before.resistance(s, t).unwrap();
        let after = truth_after.resistance(s, t).unwrap();
        prop_assert!(after <= before + 1e-7, "adding ({},{}) raised r: {} -> {}", u, v, before, after);
    }

    #[test]
    fn path_graph_resistance_is_hop_distance(len in 2usize..30, a in 0usize..30, b in 0usize..30) {
        // The path graph is bipartite, so the estimators refuse it; but the
        // solver-based ground truth is still defined and must match |a - b|.
        let g = generators::path(len).unwrap();
        let (a, b) = (a % len, b % len);
        let truth = GroundTruth::with_method(&g, GroundTruthMethod::LaplacianSolve);
        let r = truth.resistance(a, b).unwrap();
        prop_assert!((r - (a as f64 - b as f64).abs()).abs() < 1e-6);
    }
}
