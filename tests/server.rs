//! Integration tests for the concurrent serving plane: responses must be
//! bit-identical to a sequential single-caller run at any worker count and
//! any client interleaving (including deduplicated and coalesced requests),
//! admission control must bound the queue, and dedup must serve k identical
//! tickets from one execution.

use effective_resistance::graph::{generators, Graph};
use effective_resistance::{
    Accuracy, ApproxConfig, BackendChoice, Query, Request, ResistanceServer, ResistanceService,
    Response, ServerConfig, ServerHandle, ServiceError,
};
use std::sync::{Arc, Mutex};

fn graph() -> Graph {
    generators::social_network_like(400, 10.0, 33).unwrap()
}

fn service(graph: &Graph) -> ResistanceService {
    let config = ApproxConfig::with_epsilon(0.2).reseeded(7);
    ResistanceService::with_config(graph, config).unwrap()
}

/// A fixed request set covering randomized backends (forced GEER/AMC/HAY/
/// TPC), planner-routed exact answers, the index tier and cache repeats.
///
/// Deliberately excluded: `Accuracy::Exact` pair queries and ≥ 16-repeated-
/// source ε batches, whose *routing* legitimately depends on whether the
/// index happens to be built yet — concurrent arrival order may change which
/// backend answers them (both answers are exact/valid, but not the same
/// bits). Everything else is arrival-order invariant by construction.
fn request_set(g: &Graph) -> Vec<Request> {
    let edges: Vec<(usize, usize)> = g.edges().take(6).collect();
    vec![
        Request::new(Query::pair(0, 300)).with_backend(BackendChoice::Geer),
        Request::new(Query::batch(vec![(1, 2), (2, 1), (5, 399), (9, 9)]))
            .with_backend(BackendChoice::Amc),
        Request::new(Query::edge_set(edges.clone())).with_backend(BackendChoice::Hay),
        Request::new(Query::pair(3, 350))
            .with_accuracy(Accuracy::WalkBudget(20_000))
            .with_backend(BackendChoice::Tpc),
        Request::new(Query::batch(vec![(0, 300), (10, 20)])),
        Request::new(Query::single_source(42)),
        Request::new(Query::top_k(42, 5)),
        Request::new(Query::pair(17, 250)),
        Request::new(Query::edge_set(vec![edges[0], edges[3]])),
        Request::new(Query::pair(300, 0)),
        Request::new(Query::pair(0, 300)).with_backend(BackendChoice::Geer), // dedup candidate
    ]
}

/// What bit-identity is asserted over: the response payload, not the
/// bookkeeping (cache-hit and cost attribution legitimately depend on which
/// requests shared an execution).
type Payload = (Vec<u64>, Vec<usize>, &'static str);

fn payload(r: &Response) -> Payload {
    (
        r.values.iter().map(|v| v.to_bits()).collect(),
        r.nodes.clone(),
        r.backend,
    )
}

fn sequential_payloads(g: &Graph) -> Vec<Payload> {
    let service = service(g);
    request_set(g)
        .iter()
        .map(|request| payload(&service.submit(request).unwrap()))
        .collect()
}

/// Runs the fixed request set through a server with `workers` threads and
/// `clients` submitting threads, in an arrival order perturbed by `twist`,
/// and returns the payloads in request-set order.
fn server_payloads(g: &Graph, workers: usize, clients: usize, twist: usize) -> Vec<Payload> {
    let handle = ResistanceServer::spawn(
        service(g),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    );
    let requests = request_set(g);
    let results: Arc<Mutex<Vec<Option<Payload>>>> =
        Arc::new(Mutex::new(vec![None; requests.len()]));
    let threads: Vec<_> = (0..clients)
        .map(|client| {
            let handle: ServerHandle = handle.clone();
            let results = results.clone();
            // Client `c` takes requests c, c + clients, …, rotated by the
            // twist so every (workers, clients) combination submits in a
            // different interleaving.
            let mut mine: Vec<(usize, Request)> = requests
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == client)
                .map(|(i, r)| (i, r.clone()))
                .collect();
            if !mine.is_empty() {
                let by = (twist + client) % mine.len();
                mine.rotate_left(by);
            }
            std::thread::spawn(move || {
                let tickets: Vec<_> = mine
                    .into_iter()
                    .map(|(i, request)| (i, handle.submit(request).unwrap()))
                    .collect();
                for (i, ticket) in tickets {
                    let response = ticket.wait().unwrap();
                    results.lock().unwrap()[i] = Some(payload(&response));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
    Arc::try_unwrap(results)
        .unwrap()
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|p| p.expect("every request answered"))
        .collect()
}

#[test]
fn server_responses_are_bit_identical_across_worker_counts_and_interleavings() {
    let g = graph();
    let baseline = sequential_payloads(&g);
    for (twist, workers) in [(0usize, 1usize), (1, 2), (2, 8)] {
        let served = server_payloads(&g, workers, 4, twist);
        for (i, (a, b)) in baseline.iter().zip(&served).enumerate() {
            assert_eq!(
                a, b,
                "request {i} differs at {workers} workers (twist {twist})"
            );
        }
    }
}

#[test]
fn bounded_queue_rejects_with_overloaded_and_recovers() {
    let g = graph();
    let handle = ResistanceServer::spawn(
        service(&g),
        ServerConfig {
            workers: 1,
            queue_depth: 2,
            start_paused: true,
            ..ServerConfig::default()
        },
    );
    let first = handle.submit(Request::new(Query::pair(0, 100))).unwrap();
    let second = handle.submit(Request::new(Query::pair(0, 150))).unwrap();
    let overflow = handle.submit(Request::new(Query::pair(0, 200)));
    assert!(
        matches!(overflow, Err(ServiceError::Overloaded { queue_depth: 2 })),
        "third distinct submit must bounce off the depth-2 queue"
    );
    assert_eq!(handle.pending(), 2);
    handle.resume();
    assert!(first.wait().unwrap().value() > 0.0);
    assert!(second.wait().unwrap().value() > 0.0);
    // Once drained, admission works again.
    let retry = handle.submit(Request::new(Query::pair(0, 200))).unwrap();
    assert!(retry.wait().unwrap().value() > 0.0);
    let clone = handle.clone();
    clone.shutdown();
    let stats = handle.stats();
    assert_eq!(stats.rejected_overloaded, 1);
    assert_eq!(stats.completed, 3);
}

#[test]
fn identical_concurrent_tickets_share_one_backend_invocation() {
    let g = graph();
    let request = Request::new(Query::pair(7, 290)).with_backend(BackendChoice::Geer);

    // Ground truth from a plain single-caller service.
    let solo = service(&g).submit(&request).unwrap();

    let handle = ResistanceServer::spawn(
        service(&g),
        ServerConfig {
            workers: 2,
            start_paused: true,
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = (0..5)
        .map(|_| handle.submit(request.clone()).unwrap())
        .collect();
    handle.resume();
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        assert_eq!(response.value().to_bits(), solo.value().to_bits());
        assert_eq!(response.backend, "GEER");
    }
    let clone = handle.clone();
    clone.shutdown();
    let stats = handle.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.deduplicated, 4, "four submits attached to the first");
    assert_eq!(stats.executed_jobs, 1, "one computation served all five");
    assert_eq!(stats.completed, 5, "…but every ticket completed");
}

#[test]
fn coalesced_batches_amortize_work_without_changing_values() {
    let g = graph();
    // Four same-class GEER pair requests: queued while paused, a single
    // worker must take one and coalesce the other three into the same plan.
    let requests: Vec<Request> = [(0usize, 111usize), (5, 222), (9, 333), (13, 350)]
        .iter()
        .map(|&(s, t)| Request::new(Query::pair(s, t)).with_backend(BackendChoice::Geer))
        .collect();
    let solo_values: Vec<u64> = {
        let s = service(&g);
        requests
            .iter()
            .map(|r| s.submit(r).unwrap().value().to_bits())
            .collect()
    };

    let handle = ResistanceServer::spawn(
        service(&g),
        ServerConfig {
            workers: 1,
            start_paused: true,
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| handle.submit(r.clone()).unwrap())
        .collect();
    handle.resume();
    for (ticket, &expected) in tickets.into_iter().zip(&solo_values) {
        assert_eq!(ticket.wait().unwrap().value().to_bits(), expected);
    }
    let clone = handle.clone();
    clone.shutdown();
    let stats = handle.stats();
    assert_eq!(stats.executed_jobs, 1, "one coalesced execution");
    assert_eq!(stats.coalesced_batches, 1);
    assert_eq!(stats.coalesced_requests, 4);
}

#[test]
fn late_identical_submits_attach_to_the_running_execution() {
    let g = graph();
    // TP spends its walk budget literally (no adaptive early stopping), so a
    // large budget keeps the execution running long enough to attach to even
    // on a single-CPU runner.
    let request = Request::new(Query::pair(11, 273))
        .with_accuracy(Accuracy::WalkBudget(8_000_000))
        .with_backend(BackendChoice::Tp);
    let solo = service(&g).submit(&request).unwrap();

    // The attach window is timing-dependent: retry with a fresh server until
    // a round observes the leader running before the followers land. In
    // practice round 0 succeeds; the loop just keeps the test deterministic
    // in outcome rather than in schedule.
    for round in 0..20 {
        let handle = ResistanceServer::spawn(
            service(&g),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let leader = handle.submit(request.clone()).unwrap();
        // queued → running: the single worker has taken the job once it has
        // left the queue without completing.
        let running = loop {
            let stats = handle.stats();
            if stats.completed > 0 {
                break false;
            }
            if stats.submitted >= 1 && handle.pending() == 0 {
                break true;
            }
            std::thread::yield_now();
        };
        let followers: Vec<_> = (0..3)
            .map(|_| handle.submit(request.clone()).unwrap())
            .collect();
        let leader_bits = leader.wait().unwrap().value().to_bits();
        assert_eq!(leader_bits, solo.value().to_bits());
        for follower in followers {
            let response = follower.wait().unwrap();
            assert_eq!(
                response.value().to_bits(),
                leader_bits,
                "attached ticket must carry the leader's exact bits"
            );
            assert_eq!(response.backend, "TP");
        }
        let stats = handle.stats();
        handle.shutdown();
        if running && stats.attached_running > 0 {
            assert_eq!(stats.submitted, 4);
            assert_eq!(stats.completed, 4, "every ticket completed");
            assert_eq!(stats.executed_jobs, 1, "one execution served all four");
            assert_eq!(
                stats.attached_running + stats.deduplicated,
                3,
                "all three followers were absorbed without re-execution"
            );
            return;
        }
        eprintln!(
            "attach round {round}: running={running} attached={}",
            stats.attached_running
        );
    }
    panic!("followers never attached to a running execution in 20 rounds");
}

#[test]
fn sessions_carry_defaults_and_cross_class_cache_serves_epsilon_from_exact() {
    let g = graph();
    let handle = ResistanceServer::spawn(service(&g), ServerConfig::default());

    // Satellite (cache tier): an Exact answer short-circuits a later ε query
    // in the same backend-override class — end-to-end through the server.
    let exact = handle
        .session()
        .with_accuracy(Accuracy::Exact)
        .submit(Query::pair(2, 333))
        .unwrap()
        .wait()
        .unwrap();
    let eps = handle
        .session()
        .with_accuracy(Accuracy::epsilon(0.3))
        .submit(Query::pair(333, 2))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(eps.value().to_bits(), exact.value().to_bits());
    assert_eq!(eps.backend_calls, 0, "served from the Exact shard");

    let r = handle.session().resistance(0, 42).unwrap();
    assert!(r > 0.0);
    handle.shutdown();
}
