//! Robustness tests for the HTTP/1.1 front end over real sockets: malformed
//! and oversized requests, truncated bodies and slow-loris writers, session
//! headers, backpressure/deadline status mapping, keep-alive and pipelining,
//! and — the load-bearing claim — bit-identity of wire responses to
//! in-process `ResistanceService::submit` at any worker count.

use effective_resistance::graph::{generators, Graph};
use effective_resistance::http::json::Json;
use effective_resistance::{
    ApproxConfig, HttpConfig, HttpServer, Query, Request, ResistanceServer, ResistanceService,
    ServerConfig, ServerHandle,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn graph() -> Graph {
    generators::social_network_like(200, 8.0, 5).unwrap()
}

fn service(g: &Graph) -> ResistanceService {
    ResistanceService::with_config(g, ApproxConfig::with_epsilon(0.2).reseeded(7)).unwrap()
}

fn spawn(g: &Graph, workers: usize, config: HttpConfig) -> (HttpServer, ServerHandle) {
    spawn_with(
        g,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
        config,
    )
}

fn spawn_with(g: &Graph, server: ServerConfig, config: HttpConfig) -> (HttpServer, ServerHandle) {
    let handle = ResistanceServer::spawn(service(g), server);
    let probe = handle.clone();
    (HttpServer::bind(handle, config).expect("bind"), probe)
}

/// One blocking request/response exchange on a kept-alive stream.
fn roundtrip(stream: &mut TcpStream, raw: &str) -> (u16, String) {
    stream.write_all(raw.as_bytes()).expect("write request");
    read_response(stream)
}

fn post(stream: &mut TcpStream, target: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    roundtrip(stream, &raw)
}

/// Reads one Content-Length-framed response; panics on a closed socket.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end]).expect("UTF-8 head");
            let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::to_string)
                })
                .and_then(|v| v.trim().parse().ok())
                .expect("Content-Length");
            let body_start = head_end + 4;
            while buf.len() < body_start + content_length {
                let n = stream.read(&mut chunk).expect("read body");
                assert!(n > 0, "connection closed mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec());
            return (status, body.expect("UTF-8 body"));
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-head");
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn error_kind(body: &str) -> String {
    Json::parse(body)
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| panic!("not an error body: {body}"))
}

fn value_bits(body: &str) -> Vec<u64> {
    let doc = Json::parse(body).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{body}"));
    doc.get("values")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("response without values: {body}"))
        .iter()
        .map(|v| v.as_f64().expect("numeric value").to_bits())
        .collect()
}

#[test]
fn healthz_and_metrics_answer_both_formats() {
    let g = graph();
    let (server, _) = spawn(&g, 2, HttpConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    let (status, body) = roundtrip(&mut stream, "GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("workers").and_then(Json::as_u64), Some(2));

    // Prometheus text by default, JSON on request — same connection.
    let (status, text) = roundtrip(&mut stream, "GET /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    assert!(
        text.contains("# TYPE er_server_submitted counter"),
        "{text}"
    );
    let (status, json) = roundtrip(&mut stream, "GET /metrics?format=json HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let doc = Json::parse(&json).unwrap();
    assert!(
        doc.get("submitted").and_then(Json::as_u64).is_some(),
        "{json}"
    );
    server.shutdown();
}

#[test]
fn malformed_requests_map_to_4xx() {
    let g = graph();
    let (server, _) = spawn(&g, 1, HttpConfig::default());
    let addr = server.local_addr();
    // (raw request, expected status). Each case gets a fresh connection —
    // parse errors close the socket after answering.
    let cases: Vec<(String, u16)> = vec![
        ("GARBAGE\r\n\r\n".into(), 400),                // no spaces
        ("GET /healthz HTTP/2.0\r\n\r\n".into(), 400),  // bad version
        ("get /healthz HTTP/1.1\r\n\r\n".into(), 400),  // lowercase method
        ("GET /healthz  HTTP/1.1\r\n\r\n".into(), 400), // double space
        ("GET /healthz HTTP/1.1\r\nBad Header: x\r\n\r\n".into(), 400), // space in name
        (
            "GET /healthz HTTP/1.1\r\nFolded: a\r\n b\r\n\r\n".into(),
            400,
        ), // obsolete folding
        (
            "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".into(),
            501,
        ),
        (
            "POST /query HTTP/1.1\r\nContent-Length: nope\r\n\r\n".into(),
            400,
        ),
        (format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000)), 431), // request line limit
        (
            format!("GET / HTTP/1.1\r\nBig: {}\r\n\r\n", "y".repeat(64_000)),
            431,
        ),
    ];
    for (raw, expected) in cases {
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, body) = roundtrip(&mut stream, &raw);
        assert_eq!(
            status,
            expected,
            "request {:?}… answered {status}: {body}",
            &raw[..raw.len().min(40)]
        );
    }

    // Routing errors keep the connection alive: 404 then 405 on one stream.
    let mut stream = TcpStream::connect(addr).unwrap();
    let (status, _) = roundtrip(&mut stream, "GET /nope HTTP/1.1\r\n\r\n");
    assert_eq!(status, 404);
    let (status, _) = roundtrip(&mut stream, "DELETE /query HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    // Bad JSON and bad query shapes are 400s that also keep the connection.
    let (status, body) = post(&mut stream, "/query", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = post(&mut stream, "/query", r#"{"query":{"type":"warp"}}"#);
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind(&body), "bad_request");
    let (status, body) = post(
        &mut stream,
        "/query",
        r#"{"query":{"type":"pair","s":0,"t":99999}}"#,
    );
    assert_eq!(status, 400, "node out of range: {body}");
    server.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let g = graph();
    let (server, _) = spawn(
        &g,
        1,
        HttpConfig {
            max_body_bytes: 1024,
            ..HttpConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Declared ahead of the body: rejected on the header alone, no need to
    // stream 2 KiB.
    let raw = "POST /query HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
    let (status, _) = roundtrip(&mut stream, raw);
    assert_eq!(status, 413);
    server.shutdown();
}

#[test]
fn truncated_body_and_slow_loris_hit_the_read_timeout() {
    let g = graph();
    let (server, _) = spawn(
        &g,
        1,
        HttpConfig {
            read_timeout: Duration::from_millis(150),
            ..HttpConfig::default()
        },
    );
    let addr = server.local_addr();

    // Truncated body: full head, half the declared payload, then silence.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"query\":")
        .unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 408, "truncated body answers 408 after the timeout");

    // Slow loris: drip the request line one byte at a time, slower than the
    // read timeout refreshes. A mid-request stall is answered 408.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /hea").unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 408, "stalled head answers 408 after the timeout");

    // An *idle* keep-alive connection (no bytes of a next request) is closed
    // quietly — no 408 spam for normal connection churn.
    let mut stream = TcpStream::connect(addr).unwrap();
    let (status, _) = roundtrip(&mut stream, "GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(300));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "idle close sends no bytes: {rest:?}");
    server.shutdown();
}

#[test]
fn keep_alive_reuse_and_pipelining_preserve_order() {
    let g = graph();
    let (server, handle) = spawn(&g, 1, HttpConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Sequential reuse on one connection.
    let (status, first) = post(
        &mut stream,
        "/query",
        r#"{"query":{"type":"pair","s":0,"t":150}}"#,
    );
    assert_eq!(status, 200, "{first}");
    let (status, second) = post(
        &mut stream,
        "/query",
        r#"{"query":{"type":"pair","s":0,"t":150}}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(
        value_bits(&first),
        value_bits(&second),
        "cache repeat, same bits"
    );

    // Pipelining: two requests written back to back before reading anything;
    // responses must come back complete and in order.
    let a = r#"{"query":{"type":"pair","s":1,"t":100}}"#;
    let b = r#"{"query":{"type":"single_source","source":3}}"#;
    let pipelined = format!(
        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{a}POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{b}",
        a.len(),
        b.len()
    );
    stream.write_all(pipelined.as_bytes()).unwrap();
    let (status_a, reply_a) = read_response(&mut stream);
    let (status_b, reply_b) = read_response(&mut stream);
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(value_bits(&reply_a).len(), 1, "pair answered first");
    assert!(
        value_bits(&reply_b).len() > 1,
        "single-source answered second"
    );

    // HTTP/1.0 without keep-alive closes after one response.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "HTTP/1.0 connection closed after the response"
    );

    server.shutdown();
    assert!(handle.stats().submitted >= 4);
}

#[test]
fn session_headers_set_connection_defaults() {
    let g = graph();
    let (server, _) = spawn(&g, 1, HttpConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Set a backend default for the connection; later bodies omit it.
    let body = r#"{"query":{"type":"pair","s":2,"t":120}}"#;
    let raw = format!(
        "POST /query HTTP/1.1\r\nX-ER-Backend: geer\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = roundtrip(&mut stream, &raw);
    assert_eq!(status, 200, "{reply}");
    let doc = Json::parse(&reply).unwrap();
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some("GEER"));

    // The default persists across keep-alive requests on this connection…
    let (status, reply) = post(
        &mut stream,
        "/query",
        r#"{"query":{"type":"pair","s":4,"t":77}}"#,
    );
    assert_eq!(status, 200);
    let doc = Json::parse(&reply).unwrap();
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some("GEER"));

    // …an explicit body field overrides it…
    let (status, reply) = post(
        &mut stream,
        "/query",
        r#"{"query":{"type":"pair","s":4,"t":77},"backend":"amc"}"#,
    );
    assert_eq!(status, 200);
    let doc = Json::parse(&reply).unwrap();
    assert_eq!(doc.get("backend").and_then(Json::as_str), Some("AMC"));

    // …and `auto` clears it back to planner routing.
    let raw = format!(
        "POST /query HTTP/1.1\r\nX-ER-Backend: auto\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, _) = roundtrip(&mut stream, &raw);
    assert_eq!(status, 200);

    // Bad header values are a 400 without killing the connection.
    let raw = format!(
        "POST /query HTTP/1.1\r\nX-ER-Priority: urgent\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, reply) = roundtrip(&mut stream, &raw);
    assert_eq!(status, 400);
    assert_eq!(error_kind(&reply), "bad_session_header");
    let (status, _) = roundtrip(&mut stream, "GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200, "connection survives a bad session header");
    server.shutdown();
}

#[test]
fn overload_maps_to_503_and_lapsed_deadline_to_504() {
    let g = graph();
    let (server, handle) = spawn_with(
        &g,
        ServerConfig {
            workers: 1,
            queue_depth: 2,
            start_paused: true,
            ..ServerConfig::default()
        },
        HttpConfig::default(),
    );
    let addr = server.local_addr();

    // Fill the depth-2 queue in-process while paused; a third distinct HTTP
    // submit must bounce with 503.
    let a = handle.submit(Request::new(Query::pair(0, 100))).unwrap();
    let b = handle.submit(Request::new(Query::pair(0, 101))).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    let (status, reply) = post(
        &mut stream,
        "/query",
        r#"{"query":{"type":"pair","s":0,"t":102}}"#,
    );
    assert_eq!(status, 503, "{reply}");
    assert_eq!(error_kind(&reply), "overloaded");
    handle.resume();
    assert!(a.wait().unwrap().value() > 0.0);
    assert!(b.wait().unwrap().value() > 0.0);
    assert_eq!(handle.stats().rejected_overloaded, 1);
    server.shutdown();

    // A queued job whose deadline lapses before pickup answers 504: submit
    // against a *paused* server with a 1 ms deadline, let it lapse, resume.
    let (server, handle) = spawn_with(
        &g,
        ServerConfig {
            workers: 1,
            start_paused: true,
            ..ServerConfig::default()
        },
        HttpConfig::default(),
    );
    let addr = server.local_addr();
    let body = r#"{"query":{"type":"pair","s":0,"t":103}}"#;
    let raw = format!(
        "POST /query HTTP/1.1\r\nX-ER-Deadline-Ms: 1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let deadline_client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, &raw)
    });
    while handle.pending() < 1 {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(20));
    handle.resume();
    let (status, reply) = deadline_client.join().unwrap();
    assert_eq!(status, 504, "{reply}");
    assert_eq!(error_kind(&reply), "deadline_exceeded");
    assert_eq!(handle.stats().expired, 1);
    server.shutdown();
}

/// The request mix for wire-vs-in-process bit-identity: explicit backends
/// (arrival-order invariant — same exclusions as `tests/server.rs`), mixed
/// shapes, a cache repeat.
fn identity_bodies() -> Vec<String> {
    vec![
        r#"{"query":{"type":"pair","s":0,"t":150},"backend":"geer"}"#.into(),
        r#"{"query":{"type":"batch","pairs":[[1,2],[5,199],[9,9]]},"backend":"amc"}"#.into(),
        r#"{"query":{"type":"pair","s":3,"t":180},"accuracy":{"type":"walk_budget","walks":20000},"backend":"tp"}"#.into(),
        r#"{"query":{"type":"single_source","source":42}}"#.into(),
        r#"{"query":{"type":"top_k","source":42,"k":5}}"#.into(),
        r#"{"query":{"type":"pair","s":17,"t":120}}"#.into(),
        r#"{"query":{"type":"pair","s":150,"t":0},"backend":"geer"}"#.into(),
    ]
}

#[test]
fn concurrent_clients_see_in_process_bits_at_any_worker_count() {
    use effective_resistance::http::api::parse_query_body;
    use std::sync::{Arc, Mutex};

    let g = graph();
    let bodies = identity_bodies();
    // In-process ground truth through the same body parser the server uses.
    let baseline: Vec<Vec<u64>> = {
        let s = service(&g);
        bodies
            .iter()
            .map(|body| {
                let request = parse_query_body(body).unwrap();
                s.submit(&request)
                    .unwrap()
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    };

    for workers in [1usize, 2, 8] {
        let (server, _) = spawn(&g, workers, HttpConfig::default());
        let addr = server.local_addr();
        let results: Arc<Mutex<Vec<Option<Vec<u64>>>>> =
            Arc::new(Mutex::new(vec![None; bodies.len()]));
        let clients: Vec<_> = (0..4usize)
            .map(|c| {
                let mine: Vec<(usize, String)> = bodies
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 == c)
                    .map(|(i, b)| (i, b.clone()))
                    .collect();
                let results = Arc::clone(&results);
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for (i, body) in mine {
                        let (status, reply) = post(&mut stream, "/query", &body);
                        assert_eq!(status, 200, "{reply}");
                        results.lock().unwrap()[i] = Some(value_bits(&reply));
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        server.shutdown();
        let results = results.lock().unwrap();
        for (i, expected) in baseline.iter().enumerate() {
            assert_eq!(
                results[i].as_ref().expect("answered"),
                expected,
                "body {i} differs from in-process submit at {workers} workers"
            );
        }
    }
}
