//! Golden-preservation pins for the multi-root lockstep Wilson port.
//!
//! The lockstep driver grows many trees concurrently but must preserve every
//! tree's `(seed, index)` draw schedule bit for bit, so the HAY estimator,
//! the service's batch-native HAY backend and the sparsifier's tree scores
//! are pinned here against values captured from the sequential
//! one-tree-at-a-time path before the port. Only the `walk_steps` cost moved
//! (from the `trees · (n − 1)` lower bound to the true per-tree step count);
//! every estimate must be unchanged.

use er_core::{ApproxConfig, GraphContext, ResistanceEstimator};
use er_graph::generators;
use er_service::{Accuracy, Backend, HayBatchBackend, Plan, PlanItem, QueryShape, StreamPlan};
use er_sparsify::{EdgeScores, ScoreMethod};

#[test]
fn hay_estimate_survived_the_lockstep_wilson_port() {
    let g = generators::social_network_like(300, 9.0, 0x4a).unwrap();
    let ctx = GraphContext::preprocess(&g).unwrap();
    let (s, t) = g.edges().next().unwrap();
    let run = |threads: usize| {
        let config = ApproxConfig {
            threads,
            ..ApproxConfig::with_epsilon(0.2).reseeded(7)
        };
        er_core::Hay::new(&ctx, config)
            .with_tree_budget(64)
            .estimate(s, t)
            .unwrap()
    };
    let est = run(1);
    // Captured from the sequential per-tree sampler before the port.
    assert_eq!(
        est.value.to_bits(),
        0x3fa8000000000000,
        "value {}",
        est.value
    );
    assert_eq!(est.cost.spanning_trees, 64);
    // True loop-erased-walk steps: strictly above the old n − 1 bound the
    // cost accounting used to report, and deterministic.
    assert_eq!(est.cost.walk_steps, 27237);
    assert!(est.cost.walk_steps > 64 * (g.num_nodes() as u64 - 1));
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(other.value.to_bits(), est.value.to_bits());
        assert_eq!(
            other.cost.walk_steps, est.cost.walk_steps,
            "{threads} threads"
        );
    }
}

#[test]
fn hay_batch_backend_survived_the_lockstep_wilson_port() {
    let g = generators::social_network_like(300, 9.0, 0x4a).unwrap();
    let ctx = GraphContext::preprocess(&g).unwrap();
    let items: Vec<PlanItem> = g.edges().take(5).map(|(s, t)| PlanItem { s, t }).collect();
    let backend = HayBatchBackend::new(&ctx, ApproxConfig::with_epsilon(0.3).reseeded(3));
    let plan = Plan::for_items(QueryShape::EdgeSet, Accuracy::WalkBudget(40), items.clone());
    let run = |threads: usize| {
        backend
            .answer(&plan, &StreamPlan::sequential(items.len(), threads))
            .unwrap()
    };
    let resp = run(1);
    let golden: [u64; 5] = [
        0x3fa999999999999a,
        0x3f9999999999999a,
        0x3fb3333333333333,
        0x3fa999999999999a,
        0x0000000000000000,
    ];
    for (value, pin) in resp.values.iter().zip(golden) {
        assert_eq!(value.to_bits(), pin);
    }
    assert_eq!(resp.cost.walk_steps, 18078);
    assert!(resp.cost.walk_steps > 40 * (g.num_nodes() as u64 - 1));
    for threads in [2, 8] {
        let other = run(threads);
        let bits = |r: &er_core::CostBreakdown| r.walk_steps;
        assert_eq!(
            other.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            resp.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(bits(&other.cost), bits(&resp.cost), "{threads} threads");
    }
}

#[test]
fn sparsifier_tree_scores_survived_the_lockstep_wilson_port() {
    let g = generators::social_network_like(150, 10.0, 6).unwrap();
    let run = |threads: usize| {
        EdgeScores::compute_with_threads(
            &g,
            ScoreMethod::SpanningTrees { samples: 200 },
            11,
            threads,
        )
        .unwrap()
    };
    let scores = run(1);
    // Captured from the sequential per-tree sampler before the port.
    assert_eq!(scores.total().to_bits(), 0x4062a00000000004);
    let golden_head: [u64; 4] = [
        0x3fa47ae147ae147b,
        0x3fb1eb851eb851ec,
        0x3fbae147ae147ae1,
        0x3fb0a3d70a3d70a4,
    ];
    for (value, pin) in scores.scores()[..4].iter().zip(golden_head) {
        assert_eq!(value.to_bits(), pin);
    }
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(
            other
                .scores()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            scores
                .scores()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "{threads} threads"
        );
    }
}
