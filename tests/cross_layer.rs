//! Cross-layer integration tests: the indexing, sparsification and
//! application layers must agree with the paper's estimators and with the
//! exact ground truth, end to end through the public facade.

use effective_resistance::apps::{
    edge_criticality, estimate_kirchhoff_index, modularity, ClusteringConfig, ResistanceClustering,
};
use effective_resistance::graph::{generators, NodePairQuerySet};
use effective_resistance::index::{
    AllPairsResistance, BatchExecutor, ErIndex, LandmarkIndex, LandmarkSelection,
};
use effective_resistance::sparsify::{
    sample_sparsifier, EdgeScores, QualityEvaluator, SampleBudget, ScoreMethod,
};
use effective_resistance::{
    ApproxConfig, Geer, GraphContext, GroundTruth, GroundTruthMethod, ResistanceEstimator,
};

fn shared_graph() -> effective_resistance::graph::Graph {
    generators::community_social_network(500, 10.0, 3, 0.02, 0xc20).unwrap()
}

#[test]
fn index_estimator_and_ground_truth_agree() {
    let graph = shared_graph();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let config = ApproxConfig::with_epsilon(0.05);
    let mut geer = Geer::new(&ctx, config);
    let mut index = ErIndex::build(&graph).unwrap();
    let queries = NodePairQuerySet::uniform(&graph, 8, 21);
    for pair in queries.pairs() {
        let exact = truth.resistance(pair.s, pair.t).unwrap();
        let via_index = index.resistance(pair.s, pair.t).unwrap();
        let via_geer = geer.estimate(pair.s, pair.t).unwrap().value;
        assert!(
            (via_index - exact).abs() < 1e-6,
            "index vs truth at ({}, {}): {via_index} vs {exact}",
            pair.s,
            pair.t
        );
        assert!(
            (via_geer - exact).abs() <= config.epsilon,
            "GEER vs truth at ({}, {}): {via_geer} vs {exact}",
            pair.s,
            pair.t
        );
    }
}

#[test]
fn landmark_bounds_contain_both_truth_and_estimates() {
    let graph = shared_graph();
    let landmarks = LandmarkIndex::build(&graph, 10, LandmarkSelection::Mixed, 5).unwrap();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let config = ApproxConfig::with_epsilon(0.05);
    let mut geer = Geer::new(&ctx, config);
    let queries = NodePairQuerySet::uniform(&graph, 10, 33);
    for pair in queries.pairs() {
        let bounds = landmarks.bounds(pair.s, pair.t).unwrap();
        let exact = truth.resistance(pair.s, pair.t).unwrap();
        assert!(
            bounds.contains(exact),
            "({}, {}): exact {exact} outside [{}, {}]",
            pair.s,
            pair.t,
            bounds.lower,
            bounds.upper
        );
        let approx = geer.estimate(pair.s, pair.t).unwrap().value;
        assert!(approx >= bounds.lower - config.epsilon);
        assert!(approx <= bounds.upper + config.epsilon);
        // The midpoint estimate is a legitimate (if loose) approximation.
        assert!(bounds.estimate() >= 0.0);
    }
}

#[test]
fn batched_geer_queries_meet_epsilon_and_reuse_the_cache() {
    let graph = shared_graph();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let config = ApproxConfig::with_epsilon(0.1);
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let mut geer = Geer::new(&ctx, config);
    let mut executor = BatchExecutor::new(64);
    let base: Vec<(usize, usize)> = NodePairQuerySet::uniform(&graph, 6, 4)
        .pairs()
        .iter()
        .map(|p| (p.s, p.t))
        .collect();
    // Issue every pair twice (once flipped): half the workload must hit the cache.
    let mut workload = base.clone();
    workload.extend(base.iter().map(|&(s, t)| (t, s)));
    let report = executor.run(&mut geer, &workload).unwrap();
    assert_eq!(report.estimator_calls as usize, base.len());
    assert_eq!(report.cache_hits as usize, base.len());
    for (&(s, t), &value) in workload.iter().zip(&report.values) {
        let exact = truth.resistance(s, t).unwrap();
        assert!(
            (value - exact).abs() <= config.epsilon,
            "batched value at ({s}, {t}): {value} vs {exact}"
        );
    }
}

#[test]
fn geer_scored_sparsifier_preserves_the_spectrum_and_foster_total() {
    let graph = generators::social_network_like(350, 16.0, 0x5ace).unwrap();
    let scores = EdgeScores::compute(&graph, ScoreMethod::Geer { epsilon: 0.1 }, 1).unwrap();
    // Foster's theorem: the exact per-edge resistances sum to n − 1; the
    // GEER-scored total inherits the per-edge ε, so it lands within m·ε.
    let foster = scores.total();
    let n_minus_1 = graph.num_nodes() as f64 - 1.0;
    assert!(
        (foster - n_minus_1).abs() <= graph.num_edges() as f64 * 0.1,
        "Foster total {foster} vs {n_minus_1}"
    );
    let output = sample_sparsifier(
        &graph,
        &scores,
        SampleBudget::SpectralGuarantee {
            epsilon: 0.4,
            scale: 1.5,
        },
        2,
    )
    .unwrap();
    assert!(output.keep_fraction(&graph) < 1.0);
    let report = QualityEvaluator::new(&graph)
        .with_test_vectors(12)
        .with_test_cuts(12)
        .evaluate(&output.sparsifier);
    assert!(report.connected, "sparsifier must stay connected");
    assert!(
        report.max_quadratic_distortion < 0.5,
        "quadratic distortion {}",
        report.max_quadratic_distortion
    );
    assert!(report.max_cut_distortion < 0.5);
}

#[test]
fn kirchhoff_index_is_consistent_across_three_layers() {
    let graph = generators::barabasi_albert(250, 4, 0x1f).unwrap();
    // Layer 1: dense all-pairs matrix.
    let allpairs = AllPairsResistance::compute(&graph).unwrap();
    let exact = allpairs.kirchhoff_index();
    // Layer 2: diagonal-based index formula n · trace(L†).
    let index = ErIndex::build(&graph).unwrap();
    assert!((index.kirchhoff_index() - exact).abs() / exact < 1e-6);
    // Layer 3: sampled GEER estimate with its standard error.
    let (estimate, stderr) =
        estimate_kirchhoff_index(&graph, ApproxConfig::with_epsilon(0.1), 300, 9).unwrap();
    assert!(
        (estimate - exact).abs() < 5.0 * stderr + 0.05 * exact,
        "sampled {estimate} ± {stderr} vs exact {exact}"
    );
}

#[test]
fn criticality_ranking_flags_the_planted_bottleneck_and_clusters_respect_it() {
    // Two communities joined by a couple of bridges: the bridges must rank
    // among the most critical edges, and resistance clustering must cut along
    // them.
    let graph = generators::community_social_network(240, 10.0, 2, 0.001, 77).unwrap();
    let config = ApproxConfig::with_epsilon(0.1);
    let ranking = edge_criticality(&graph, config).unwrap();
    let top20: Vec<(usize, usize)> = ranking.iter().take(20).map(|e| (e.u, e.v)).collect();
    let crossing = top20
        .iter()
        .filter(|&&(u, v)| (u < 120) != (v < 120))
        .count();
    assert!(
        crossing >= 1,
        "at least one inter-community bridge must appear in the top-20: {top20:?}"
    );

    let clustering = ResistanceClustering::new(
        &graph,
        ClusteringConfig {
            num_clusters: 2,
            ..ClusteringConfig::default()
        },
    )
    .run()
    .unwrap();
    let q = modularity(&graph, &clustering.assignments);
    assert!(q > 0.2, "modularity {q}");
}

#[test]
fn dynamic_graph_matches_static_estimators_after_mutations() {
    let graph = shared_graph();
    let config = ApproxConfig::with_epsilon(0.05);
    let dynamic = effective_resistance::DynamicResistanceService::from_graph(&graph, config);
    // Mutate: add a shortcut inside one community, remove a random edge.
    dynamic.insert_edge(2, 77).unwrap();
    let some_edge = graph.edges().nth(42).unwrap();
    dynamic.remove_edge(some_edge.0, some_edge.1).unwrap();
    // Build the equivalent static graph and compare a handful of queries.
    let mutated = effective_resistance::graph::transform::add_edges(&graph, &[(2, 77)]).unwrap();
    let mutated =
        effective_resistance::graph::transform::remove_edges(&mutated, &[some_edge]).unwrap();
    let truth = GroundTruth::with_method(&mutated, GroundTruthMethod::LaplacianSolve);
    for &(s, t) in &[(0usize, 400usize), (2, 77), (150, 350)] {
        let dynamic_value = dynamic.resistance(s, t).unwrap();
        let exact = truth.resistance(s, t).unwrap();
        assert!(
            (dynamic_value - exact).abs() <= config.epsilon,
            "({s}, {t}): dynamic {dynamic_value} vs exact {exact}"
        );
    }
}
