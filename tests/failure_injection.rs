//! Failure-injection integration tests: every layer must reject invalid
//! inputs with a descriptive error instead of panicking, looping forever or
//! silently returning garbage — the behaviours a downstream system depends on
//! when it feeds real-world data into the library.

use effective_resistance::apps::{
    ClusteringConfig, Recommender, ResistanceClustering, ResistanceMonitor,
};
use effective_resistance::graph::{analysis, generators, io, transform, GraphBuilder};
use effective_resistance::index::{
    AllPairsResistance, ErIndex, IndexError, LandmarkIndex, LandmarkSelection,
};
use effective_resistance::linalg::ResistanceSketch;
use effective_resistance::sparsify::WeightedGraph;
use effective_resistance::{
    Amc, ApproxConfig, DynamicResistanceService, EstimatorError, Exact, Geer, GraphContext,
    ResistanceEstimator, ServiceError,
};

/// A graph with two components (violates the connectivity assumption).
fn disconnected() -> effective_resistance::graph::Graph {
    GraphBuilder::from_edges(
        7,
        vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (5, 6)],
    )
    .build()
    .unwrap()
}

/// A bipartite graph (violates the aperiodicity assumption).
fn bipartite() -> effective_resistance::graph::Graph {
    generators::cycle(8).unwrap()
}

#[test]
fn spectral_preprocessing_rejects_invalid_graphs() {
    assert!(GraphContext::preprocess(disconnected()).is_err());
    assert!(GraphContext::preprocess(bipartite()).is_err());
    // The error message names the problem.
    let message = GraphContext::preprocess(bipartite())
        .unwrap_err()
        .to_string();
    assert!(
        message.to_lowercase().contains("bipartite"),
        "message: {message}"
    );
}

#[test]
fn estimators_validate_query_nodes_and_configs() {
    let graph = generators::complete(12).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let mut geer = Geer::new(&ctx, ApproxConfig::with_epsilon(0.1));
    assert!(geer.estimate(0, 12).is_err());
    assert!(geer.estimate(99, 0).is_err());

    let bad_epsilon = ApproxConfig {
        epsilon: 0.0,
        ..ApproxConfig::default()
    };
    assert!(bad_epsilon.validate().is_err());
    let bad_delta = ApproxConfig {
        delta: 1.0,
        ..ApproxConfig::default()
    };
    assert!(bad_delta.validate().is_err());
    let bad_tau = ApproxConfig {
        tau: 0,
        ..ApproxConfig::default()
    };
    assert!(bad_tau.validate().is_err());

    let mut amc = Amc::new(&ctx, ApproxConfig::with_epsilon(0.1));
    assert!(
        amc.estimate(3, 3).unwrap().value.abs() < 1e-12,
        "self pairs are exactly 0"
    );
}

#[test]
fn memory_budgets_surface_as_errors_not_oom() {
    // EXACT refuses to materialise a pseudo-inverse beyond its node cap —
    // mirroring the paper's out-of-memory exclusions — and so do the
    // all-pairs index and the RP sketch.
    let graph = generators::social_network_like(600, 8.0, 1).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    match Exact::with_node_cap(&ctx, 100) {
        Err(EstimatorError::BudgetExceeded { resource, .. }) => assert_eq!(resource, "memory"),
        Err(other) => panic!("expected a budget error, got {other}"),
        Ok(_) => panic!("expected a budget error, got a built estimator"),
    }
    match AllPairsResistance::compute_with_cap(&graph, 100) {
        Err(IndexError::BudgetExceeded { resource, .. }) => assert_eq!(resource, "memory"),
        other => panic!(
            "expected a budget error, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }
    assert!(ResistanceSketch::build_with_limit(&graph, 0.01, 24.0, 0, 10_000).is_err());
}

#[test]
fn index_layer_rejects_invalid_graphs_and_nodes() {
    assert!(ErIndex::build(disconnected()).is_err());
    assert!(ErIndex::build(bipartite()).is_err());
    assert!(LandmarkIndex::build(&disconnected(), 3, LandmarkSelection::Random, 0).is_err());
    assert!(LandmarkIndex::build(
        &generators::complete(8).unwrap(),
        0,
        LandmarkSelection::Random,
        0
    )
    .is_err());

    let graph = generators::complete(10).unwrap();
    let mut index = ErIndex::build(&graph).unwrap();
    assert!(index.resistance(0, 10).is_err());
    assert!(index.single_source(11).is_err());
    assert!(index.diagonal_entry(10).is_err());
}

#[test]
fn dynamic_graph_surfaces_disconnection_and_out_of_range_edges() {
    let graph = generators::social_network_like(50, 6.0, 2).unwrap();
    let dynamic = DynamicResistanceService::from_graph(&graph, ApproxConfig::with_epsilon(0.1));
    assert!(dynamic.insert_edge(0, 50).is_err());
    assert!(dynamic.remove_edge(50, 0).is_err());
    assert!(dynamic.resistance(0, 50).is_err());

    // Cut a node loose: queries must fail with a graph error, and recover
    // once the edge is restored.
    let leaf = (0..50).min_by_key(|&v| graph.degree(v)).unwrap();
    let neighbors: Vec<usize> = graph.neighbors(leaf).to_vec();
    for &u in &neighbors {
        dynamic.remove_edge(leaf, u).unwrap();
    }
    assert!(matches!(
        dynamic.resistance(leaf, (leaf + 1) % 50),
        Err(ServiceError::Index(IndexError::Graph(_)))
    ));
    for &u in &neighbors {
        dynamic.insert_edge(leaf, u).unwrap();
    }
    assert!(dynamic.resistance(leaf, (leaf + 1) % 50).is_ok());
}

#[test]
fn application_layer_propagates_substrate_errors() {
    // Recommender and monitor refuse graphs that violate the standing
    // assumptions instead of looping or panicking.
    assert!(Recommender::new(&disconnected(), ApproxConfig::default()).is_err());
    assert!(Recommender::new(&bipartite(), ApproxConfig::default()).is_err());

    let graph = generators::social_network_like(60, 6.0, 3).unwrap();
    let mut monitor = ResistanceMonitor::new(vec![(0, 1000)], ApproxConfig::default(), 3.0, 0.05);
    assert!(monitor.observe(&graph).is_err());

    let split_graph = disconnected();
    let clustering = ResistanceClustering::new(&split_graph, ClusteringConfig::default());
    assert!(clustering.run().is_err());
}

#[test]
fn weighted_graph_and_io_reject_malformed_input() {
    assert!(WeightedGraph::from_weighted_edges(3, vec![(0, 1, -1.0)]).is_err());
    assert!(WeightedGraph::from_weighted_edges(3, vec![(0, 9, 1.0)]).is_err());
    assert!(WeightedGraph::from_weighted_edges(0, vec![]).is_err());

    // Edge-list parser: malformed token reports the line number.
    let bad = "0 1\n1 two\n";
    let err = io::parse_edge_list(std::io::BufReader::new(bad.as_bytes())).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("line 2") || message.contains("2"),
        "message: {message}"
    );
}

#[test]
fn transforms_validate_their_inputs() {
    let graph = generators::complete(6).unwrap();
    assert!(transform::induced_subgraph(&graph, &[9]).is_err());
    assert!(transform::induced_subgraph(&graph, &[]).is_err());
    assert!(transform::contract_pair(&graph, 0, 9).is_err());
    assert!(transform::k_core(&graph, 99).is_err());

    // Removing every edge of a node leaves a valid (but not ergodic) graph;
    // the ergodicity check downstream reports it.
    let star = generators::star(5).unwrap();
    let isolated = transform::remove_edges(&star, &star.edges().collect::<Vec<_>>()).unwrap();
    assert_eq!(isolated.num_edges(), 0);
    assert!(analysis::validate_ergodic(&isolated).is_err());
}
