//! Integration tests for the `ResistanceService` query plane: planner
//! routing observed end-to-end, bit-identical answers across thread counts,
//! and ε-accuracy of planned answers against ground truth.

use effective_resistance::graph::{generators, Graph};
use effective_resistance::{
    Accuracy, ApproxConfig, BackendChoice, GroundTruth, GroundTruthMethod, Query, Request,
    ResistanceService, Response,
};

fn small_graph() -> Graph {
    generators::social_network_like(600, 10.0, 33).unwrap()
}

fn large_graph() -> Graph {
    generators::social_network_like(2_000, 12.0, 9).unwrap()
}

fn service_at(graph: &Graph, threads: usize) -> ResistanceService {
    let config = ApproxConfig::with_epsilon(0.2)
        .reseeded(7)
        .with_threads(threads);
    ResistanceService::with_config(graph, config).unwrap()
}

/// Runs the same request sequence through a fresh service per thread count
/// and returns all responses, so cache interactions are exercised too.
fn run_sequence(graph: &Graph, threads: usize, requests: &[Request]) -> Vec<Response> {
    let service = service_at(graph, threads);
    requests
        .iter()
        .map(|r| service.submit(r).unwrap())
        .collect()
}

#[test]
fn responses_are_bit_identical_at_1_2_8_threads() {
    let graph = small_graph();
    let edges: Vec<(usize, usize)> = graph.edges().take(6).collect();
    let requests = vec![
        // Randomized pair backends, forced so sampling paths are exercised
        // even though the planner would answer this small graph exactly.
        Request::new(Query::pair(0, 300)).with_backend(BackendChoice::Geer),
        Request::new(Query::batch(vec![(1, 2), (2, 1), (5, 599), (9, 9), (1, 2)]))
            .with_backend(BackendChoice::Amc),
        Request::new(Query::edge_set(edges.clone())).with_backend(BackendChoice::Hay),
        // Budgeted sampling.
        Request::new(Query::pair(3, 400))
            .with_accuracy(Accuracy::WalkBudget(20_000))
            .with_backend(BackendChoice::Tpc),
        Request::new(Query::edge_set(vec![edges[0]]))
            .with_accuracy(Accuracy::WalkBudget(20_000))
            .with_backend(BackendChoice::Mc2),
        // Planner-routed work: exact pair tier, index tier, repeat from cache.
        Request::new(Query::batch(vec![(0, 300), (10, 20), (0, 300)])),
        Request::new(Query::single_source(42)),
        Request::new(Query::top_k(42, 5)),
        Request::new(Query::Diagonal),
        Request::new(Query::pair(0, 300)),
    ];
    let base = run_sequence(&graph, 1, &requests);
    for threads in [2, 8] {
        let other = run_sequence(&graph, threads, &requests);
        for (i, (a, b)) in base.iter().zip(&other).enumerate() {
            assert_eq!(
                a.values, b.values,
                "request {i} differs at {threads} threads"
            );
            assert_eq!(a.nodes, b.nodes, "request {i} nodes differ");
            assert_eq!(a.backend, b.backend, "request {i} backend differs");
        }
    }
}

#[test]
fn planner_routing_is_observable_end_to_end() {
    // Small graph + ε target: the exact CG tier undercuts sampling.
    let small = small_graph();
    let service = service_at(&small, 0);
    let pair = service.submit(&Request::new(Query::pair(0, 100))).unwrap();
    assert_eq!(pair.backend, "EXACT-CG");

    // Large graph + ε target: GEER for pairs, batch-native HAY for edge sets.
    let large = large_graph();
    let service = service_at(&large, 0);
    let pair = service
        .submit(&Request::new(Query::pair(0, 1_000)))
        .unwrap();
    assert_eq!(pair.backend, "GEER");
    assert!(pair.cost.random_walks > 0 || pair.cost.matvec_ops > 0);
    let edges: Vec<(usize, usize)> = large.edges().take(8).collect();
    let set = service
        .submit(&Request::new(Query::edge_set(edges)))
        .unwrap();
    assert_eq!(set.backend, "HAY");
    assert!(set.cost.spanning_trees > 0);

    // Source shapes always use the index; once the index exists, exact
    // pair queries ride it for free.
    let row = service
        .submit(&Request::new(Query::single_source(5)))
        .unwrap();
    assert_eq!(row.backend, "INDEX");
    assert_eq!(row.values.len(), large.num_nodes());
    let exact_pair = service
        .submit(&Request::new(Query::pair(5, 6)).with_accuracy(Accuracy::Exact))
        .unwrap();
    assert_eq!(exact_pair.backend, "INDEX");
    assert!((exact_pair.value() - row.values[6]).abs() < 1e-9);

    // Budgeted sampling goes to AMC.
    let budgeted = service
        .submit(&Request::new(Query::pair(0, 1_000)).with_accuracy(Accuracy::WalkBudget(100_000)))
        .unwrap();
    assert_eq!(budgeted.backend, "AMC");
    assert!(budgeted.cost.random_walks <= 100_000);
}

#[test]
fn planned_answers_meet_the_epsilon_target() {
    let graph = large_graph();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let service = service_at(&graph, 0);
    for &(s, t) in &[(0usize, 1_000usize), (17, 1_999), (250, 251)] {
        let response = service
            .submit(&Request::new(Query::pair(s, t)).with_accuracy(Accuracy::epsilon(0.2)))
            .unwrap();
        let exact = truth.resistance(s, t).unwrap();
        assert!(
            (response.value() - exact).abs() <= 0.2,
            "({s},{t}): {} via {} vs exact {exact}",
            response.value(),
            response.backend
        );
    }
}

#[test]
fn exact_tier_matches_ground_truth_closely() {
    let graph = small_graph();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let service = service_at(&graph, 0);
    let pairs = [(0usize, 300usize), (1, 2), (598, 599)];
    let response = service
        .submit(&Request::new(Query::batch(pairs.to_vec())))
        .unwrap();
    for (&(s, t), &value) in pairs.iter().zip(&response.values) {
        let exact = truth.resistance(s, t).unwrap();
        assert!(
            (value - exact).abs() < 1e-6,
            "({s},{t}): {value} vs {exact}"
        );
    }
}

#[test]
fn cache_tier_survives_across_requests_and_accuracies() {
    let graph = small_graph();
    let service = service_at(&graph, 0);
    let first = service.submit(&Request::new(Query::pair(0, 100))).unwrap();
    assert_eq!(first.backend_calls, 1);
    let repeat = service.submit(&Request::new(Query::pair(100, 0))).unwrap();
    assert_eq!(repeat.backend_calls, 0, "symmetric repeat is a cache hit");
    assert_eq!(repeat.value(), first.value());
    // A different accuracy class must not reuse the entry.
    let exact = service
        .submit(&Request::new(Query::pair(0, 100)).with_accuracy(Accuracy::Exact))
        .unwrap();
    assert_eq!(exact.backend_calls, 1);
}
