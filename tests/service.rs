//! Integration tests for the `ResistanceService` query plane: planner
//! routing observed end-to-end, bit-identical answers across thread counts,
//! and ε-accuracy of planned answers against ground truth.

use effective_resistance::graph::{generators, Graph};
use effective_resistance::{
    Accuracy, ApproxConfig, BackendChoice, GroundTruth, GroundTruthMethod, Query, Request,
    ResistanceService, Response,
};

fn tiny_graph() -> Graph {
    // Below the planner's node-count fallback (256): ε requests stay exact.
    generators::social_network_like(200, 10.0, 33).unwrap()
}

fn small_graph() -> Graph {
    generators::social_network_like(600, 10.0, 33).unwrap()
}

fn large_graph() -> Graph {
    generators::social_network_like(2_000, 12.0, 9).unwrap()
}

fn service_at(graph: &Graph, threads: usize) -> ResistanceService {
    let config = ApproxConfig::with_epsilon(0.2)
        .reseeded(7)
        .with_threads(threads);
    ResistanceService::with_config(graph, config).unwrap()
}

/// Runs the same request sequence through a fresh service per thread count
/// and returns all responses, so cache interactions are exercised too.
fn run_sequence(graph: &Graph, threads: usize, requests: &[Request]) -> Vec<Response> {
    let service = service_at(graph, threads);
    requests
        .iter()
        .map(|r| service.submit(r).unwrap())
        .collect()
}

#[test]
fn responses_are_bit_identical_at_1_2_8_threads() {
    let graph = small_graph();
    let edges: Vec<(usize, usize)> = graph.edges().take(6).collect();
    let requests = vec![
        // Randomized pair backends, forced so sampling paths are exercised
        // even though the planner would answer this small graph exactly.
        Request::new(Query::pair(0, 300)).with_backend(BackendChoice::Geer),
        Request::new(Query::batch(vec![(1, 2), (2, 1), (5, 599), (9, 9), (1, 2)]))
            .with_backend(BackendChoice::Amc),
        Request::new(Query::edge_set(edges.clone())).with_backend(BackendChoice::Hay),
        // Budgeted sampling.
        Request::new(Query::pair(3, 400))
            .with_accuracy(Accuracy::WalkBudget(20_000))
            .with_backend(BackendChoice::Tpc),
        Request::new(Query::edge_set(vec![edges[0]]))
            .with_accuracy(Accuracy::WalkBudget(20_000))
            .with_backend(BackendChoice::Mc2),
        // Planner-routed work: exact pair tier, index tier, repeat from cache.
        Request::new(Query::batch(vec![(0, 300), (10, 20), (0, 300)])),
        Request::new(Query::single_source(42)),
        Request::new(Query::top_k(42, 5)),
        Request::new(Query::Diagonal),
        Request::new(Query::pair(0, 300)),
    ];
    let base = run_sequence(&graph, 1, &requests);
    for threads in [2, 8] {
        let other = run_sequence(&graph, threads, &requests);
        for (i, (a, b)) in base.iter().zip(&other).enumerate() {
            assert_eq!(
                a.values, b.values,
                "request {i} differs at {threads} threads"
            );
            assert_eq!(a.nodes, b.nodes, "request {i} nodes differ");
            assert_eq!(a.backend, b.backend, "request {i} backend differs");
        }
    }
}

#[test]
fn planner_routing_is_observable_end_to_end() {
    // Tiny graph + ε target: the exact CG tier undercuts sampling.
    let tiny = tiny_graph();
    let service = service_at(&tiny, 0);
    let pair = service.submit(&Request::new(Query::pair(0, 100))).unwrap();
    assert_eq!(pair.backend, "EXACT-CG");

    // A slow-mixing graph (small spectral gap) stays exact at any size: the
    // planner's lambda rule overrides the node-count fallback.
    let ring = generators::watts_strogatz(2_000, 6, 0.1, 5).unwrap();
    let service = service_at(&ring, 0);
    let slow = service
        .submit(&Request::new(Query::pair(0, 1_000)))
        .unwrap();
    assert_eq!(slow.backend, "EXACT-CG");

    // Large fast-mixing graph + ε target: GEER for pairs, batch-native HAY
    // for edge sets.
    let large = large_graph();
    let service = service_at(&large, 0);
    let pair = service
        .submit(&Request::new(Query::pair(0, 1_000)))
        .unwrap();
    assert_eq!(pair.backend, "GEER");
    assert!(pair.cost.random_walks > 0 || pair.cost.matvec_ops > 0);
    let edges: Vec<(usize, usize)> = large.edges().take(8).collect();
    let set = service
        .submit(&Request::new(Query::edge_set(edges)))
        .unwrap();
    assert_eq!(set.backend, "HAY");
    assert!(set.cost.spanning_trees > 0);

    // Source shapes always use the index; once the index exists, exact
    // pair queries ride it for free.
    let row = service
        .submit(&Request::new(Query::single_source(5)))
        .unwrap();
    assert_eq!(row.backend, "INDEX");
    assert_eq!(row.values.len(), large.num_nodes());
    let exact_pair = service
        .submit(&Request::new(Query::pair(5, 6)).with_accuracy(Accuracy::Exact))
        .unwrap();
    assert_eq!(exact_pair.backend, "INDEX");
    assert!((exact_pair.value() - row.values[6]).abs() < 1e-9);

    // Budgeted sampling goes to AMC.
    let budgeted = service
        .submit(&Request::new(Query::pair(0, 1_000)).with_accuracy(Accuracy::WalkBudget(100_000)))
        .unwrap();
    assert_eq!(budgeted.backend, "AMC");
    assert!(budgeted.cost.random_walks <= 100_000);
}

#[test]
fn planned_answers_meet_the_epsilon_target() {
    let graph = large_graph();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let service = service_at(&graph, 0);
    for &(s, t) in &[(0usize, 1_000usize), (17, 1_999), (250, 251)] {
        let response = service
            .submit(&Request::new(Query::pair(s, t)).with_accuracy(Accuracy::epsilon(0.2)))
            .unwrap();
        let exact = truth.resistance(s, t).unwrap();
        assert!(
            (response.value() - exact).abs() <= 0.2,
            "({s},{t}): {} via {} vs exact {exact}",
            response.value(),
            response.backend
        );
    }
}

#[test]
fn exact_tier_matches_ground_truth_closely() {
    let graph = tiny_graph();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let service = service_at(&graph, 0);
    let pairs = [(0usize, 150usize), (1, 2), (198, 199)];
    let response = service
        .submit(&Request::new(Query::batch(pairs.to_vec())))
        .unwrap();
    assert_eq!(response.backend, "EXACT-CG", "tiny graph stays exact");
    for (&(s, t), &value) in pairs.iter().zip(&response.values) {
        let exact = truth.resistance(s, t).unwrap();
        assert!(
            (value - exact).abs() < 1e-6,
            "({s},{t}): {value} vs {exact}"
        );
    }
}

/// The batched GEER backend (one shared SMM frontier per distinct endpoint)
/// must answer every pair with exactly the bits a solo per-pair submission
/// computes — at 1, 2 and 8 worker threads, through plain batch submission
/// and through `submit_coalesced`.
#[test]
fn batched_geer_is_bit_identical_to_solo_pairs_at_1_2_8_threads() {
    let graph = small_graph();
    // A shared-endpoint workload: hub nodes 0 and 7 appear in many pairs.
    let pairs: Vec<(usize, usize)> = vec![
        (0, 300),
        (0, 150),
        (0, 480),
        (7, 300),
        (7, 90),
        (12, 13),
        (44, 44),
        (0, 150),
    ];
    // Solo baseline: every pair submitted alone, fresh service (no cache).
    let solo_bits: Vec<u64> = {
        let service = service_at(&graph, 1);
        pairs
            .iter()
            .map(|&(s, t)| {
                service
                    .submit(&Request::new(Query::pair(s, t)).with_backend(BackendChoice::Geer))
                    .unwrap()
                    .value()
                    .to_bits()
            })
            .collect()
    };
    for threads in [1usize, 2, 8] {
        // One batch: the whole workload shares one frontier set.
        let service = service_at(&graph, threads);
        let batch = service
            .submit(&Request::new(Query::batch(pairs.clone())).with_backend(BackendChoice::Geer))
            .unwrap();
        let batch_bits: Vec<u64> = batch.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(batch_bits, solo_bits, "batch diverged at {threads} threads");
        // The cost split never overstates work: shared SMM once, AMC tails
        // per owned item, recombining to the full plan cost.
        let mut recombined = batch.shared_cost;
        recombined += batch.owned_cost();
        assert_eq!(recombined, batch.cost);
        assert_eq!(batch.item_costs.len() as u64, batch.backend_calls);

        // Coalesced across requests: one frontier set for the whole group.
        let service = service_at(&graph, threads);
        let a = Request::new(Query::batch(pairs[..4].to_vec())).with_backend(BackendChoice::Geer);
        let b = Request::new(Query::batch(pairs[4..].to_vec())).with_backend(BackendChoice::Geer);
        let grouped = service.submit_coalesced(&[&a, &b]).unwrap();
        let grouped_bits: Vec<u64> = grouped[0]
            .values
            .iter()
            .chain(&grouped[1].values)
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            grouped_bits, solo_bits,
            "coalesced group diverged at {threads} threads"
        );
        // Both members carry the same group-level shared cost.
        assert_eq!(grouped[0].shared_cost, grouped[1].shared_cost);
    }
}

/// Regression test for an arrival-order dependence the concurrent server
/// exposed: a batch carrying `(s, t)` coalesced with a request carrying
/// `(t, s)` used to compute the pair in whichever orientation reached the
/// plan first — and sampling backends draw different (equally valid) bits
/// per orientation, so the answer raced with scheduling. Misses are now
/// computed in canonical `(min, max)` orientation; both orientations must
/// yield identical bits on fresh services, with no cache involved.
#[test]
fn pair_orientation_never_changes_bits() {
    let graph = large_graph();
    let forward = service_at(&graph, 1)
        .submit(&Request::new(Query::pair(0, 1_000)))
        .unwrap();
    assert_eq!(forward.backend, "GEER", "sampling backend, not exact");
    let reversed = service_at(&graph, 1)
        .submit(&Request::new(Query::pair(1_000, 0)))
        .unwrap();
    assert_eq!(forward.value().to_bits(), reversed.value().to_bits());

    // The server race, made deterministic: the reversed pair creates the
    // plan item first and the forward batch dedups onto it.
    let service = service_at(&graph, 1);
    let rev = Request::new(Query::pair(1_000, 0));
    let fwd = Request::new(Query::batch(vec![(0, 1_000), (10, 20)]));
    let grouped = service.submit_coalesced(&[&rev, &fwd]).unwrap();
    assert_eq!(grouped[0].value().to_bits(), forward.value().to_bits());
    assert_eq!(grouped[1].values[0].to_bits(), forward.value().to_bits());
}

#[test]
fn cache_tier_survives_across_requests_and_accuracies() {
    let graph = small_graph();
    let service = service_at(&graph, 0);
    let first = service.submit(&Request::new(Query::pair(0, 100))).unwrap();
    assert_eq!(first.backend_calls, 1);
    let repeat = service.submit(&Request::new(Query::pair(100, 0))).unwrap();
    assert_eq!(repeat.backend_calls, 0, "symmetric repeat is a cache hit");
    assert_eq!(repeat.value(), first.value());
    // A different accuracy class must not reuse the entry.
    let exact = service
        .submit(&Request::new(Query::pair(0, 100)).with_accuracy(Accuracy::Exact))
        .unwrap();
    assert_eq!(exact.backend_calls, 1);
}
