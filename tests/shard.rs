//! Integration tests for the sharded serving plane: intra-shard answers
//! bit-identical to an unsharded service over the same induced subgraph (at
//! several thread counts), cross-shard intervals sound against all-pairs
//! ground truth, and escalation firing exactly when the width threshold
//! says so.

use effective_resistance::graph::transform::induced_subgraph;
use effective_resistance::graph::{generators, Graph};
use effective_resistance::index::AllPairsResistance;
use effective_resistance::shard::RouteKind;
use effective_resistance::{
    Accuracy, ApproxConfig, Query, Request, ResistanceService, ShardConfig, ShardedService,
};

fn test_graph() -> Graph {
    generators::watts_strogatz(240, 6, 0.1, 5).unwrap()
}

fn approx_at(threads: usize) -> ApproxConfig {
    ApproxConfig::with_epsilon(0.2)
        .reseeded(7)
        .with_threads(threads)
}

#[test]
fn intra_shard_answers_are_bit_identical_to_unsharded_service() {
    let g = test_graph();
    let accuracy = Accuracy::epsilon(0.2);
    let mut per_thread_bits: Vec<Vec<u64>> = Vec::new();
    for threads in [1, 2, 8] {
        let sharded =
            ShardedService::build(&g, ShardConfig::with_shards(2), approx_at(threads)).unwrap();
        let partition = sharded.partition().clone();
        assert_eq!(partition.num_parts, 2, "both shards must be ergodic here");
        let mut bits = Vec::new();
        for p in 0..partition.num_parts {
            let nodes = partition.part_nodes(p);
            let (subgraph, map) = induced_subgraph(&g, &nodes).unwrap();
            let reference = ResistanceService::with_config(&subgraph, approx_at(threads)).unwrap();
            let n = subgraph.num_nodes();
            let local_pairs = [(0, n - 1), (1, n / 2), (n / 3, 2 * n / 3)];
            // Pair-shaped single submits.
            for &(ls, lt) in &local_pairs {
                let via_shard = sharded
                    .submit(
                        &Request::new(Query::pair(map.global_of(ls), map.global_of(lt)))
                            .with_accuracy(accuracy),
                    )
                    .unwrap();
                assert_eq!(via_shard.backend, "SHARD");
                let direct = reference
                    .submit(&Request::new(Query::pair(ls, lt)).with_accuracy(accuracy))
                    .unwrap();
                assert_eq!(
                    via_shard.value().to_bits(),
                    direct.value().to_bits(),
                    "shard {p} pair ({ls}, {lt}) at {threads} threads"
                );
                bits.push(via_shard.value().to_bits());
            }
            // A batch over the same shard (fresh services so neither side
            // answers from the caches warmed above).
            let fresh =
                ShardedService::build(&g, ShardConfig::with_shards(2), approx_at(threads)).unwrap();
            let fresh_reference =
                ResistanceService::with_config(&subgraph, approx_at(threads)).unwrap();
            let global_batch: Vec<_> = local_pairs
                .iter()
                .map(|&(ls, lt)| (map.global_of(ls), map.global_of(lt)))
                .collect();
            let via_shard = fresh
                .submit(&Request::new(Query::batch(global_batch)).with_accuracy(accuracy))
                .unwrap();
            let direct = fresh_reference
                .submit(&Request::new(Query::batch(local_pairs.to_vec())).with_accuracy(accuracy))
                .unwrap();
            for (slot, (a, b)) in via_shard.values.iter().zip(&direct.values).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "shard {p} batch slot {slot} at {threads} threads"
                );
                bits.push(a.to_bits());
            }
        }
        per_thread_bits.push(bits);
    }
    assert_eq!(per_thread_bits[0], per_thread_bits[1]);
    assert_eq!(per_thread_bits[0], per_thread_bits[2]);
}

/// Every cross-shard pair of a ground-truth-checkable graph gets a sound
/// interval, and the routed value sits inside it (or is the exact answer).
#[test]
fn cross_shard_intervals_contain_the_exact_resistance() {
    let g = test_graph();
    let sharded = ShardedService::build(&g, ShardConfig::with_shards(2), approx_at(1)).unwrap();
    let router = sharded.router();
    let truth = AllPairsResistance::compute(&g).unwrap();
    let n = g.num_nodes();
    let mut checked = 0;
    for s in (0..n).step_by(7) {
        for t in (0..n).step_by(11) {
            if s == t || router.shard_of(s) == router.shard_of(t) {
                continue;
            }
            let bounds = router.cross_bounds(s, t).unwrap();
            let exact = truth.get(s, t);
            assert!(
                bounds.contains(exact),
                "r({s},{t}) = {exact} outside [{}, {}]",
                bounds.lower,
                bounds.upper
            );
            let answer = router.route(s, t, Accuracy::epsilon(0.2)).unwrap();
            match answer.kind {
                RouteKind::CrossBounds => {
                    assert_eq!(answer.value, bounds.estimate());
                }
                RouteKind::Escalated => {
                    assert!(
                        (answer.value - exact).abs() < 1e-6,
                        "escalated answer must be exact"
                    );
                }
                RouteKind::Intra => panic!("cross-shard pair routed intra"),
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 20,
        "too few cross-shard pairs exercised: {checked}"
    );
}

/// Escalation fires exactly when the interval is wider than the configured
/// threshold — the threshold is picked mid-distribution so both outcomes
/// are exercised — and `Accuracy::Exact` always escalates.
#[test]
fn escalation_triggers_exactly_at_the_width_threshold() {
    let g = test_graph();
    // First pass: measure the width distribution with escalation off.
    let probe = ShardedService::build(
        &g,
        ShardConfig::with_shards(2).with_escalation(false),
        approx_at(1),
    )
    .unwrap();
    let n = g.num_nodes();
    let mut cross_pairs = Vec::new();
    let mut widths = Vec::new();
    for s in (0..n).step_by(5) {
        for t in (0..n).step_by(13) {
            if s != t && probe.router().shard_of(s) != probe.router().shard_of(t) {
                cross_pairs.push((s, t));
                widths.push(probe.router().cross_bounds(s, t).unwrap().width());
            }
        }
    }
    assert!(cross_pairs.len() >= 20);
    widths.sort_by(f64::total_cmp);
    let threshold = widths[widths.len() / 2];
    assert!(
        widths.first().unwrap() < &threshold && widths.last().unwrap() > &threshold,
        "median threshold must split the widths"
    );

    let sharded = ShardedService::build(
        &g,
        ShardConfig::with_shards(2).with_width_threshold(threshold),
        approx_at(1),
    )
    .unwrap();
    let router = sharded.router();
    let mut escalated = 0u64;
    for &(s, t) in &cross_pairs {
        let bounds = router.cross_bounds(s, t).unwrap();
        let answer = router.route(s, t, Accuracy::epsilon(0.2)).unwrap();
        let should_escalate = bounds.width() > threshold;
        assert_eq!(
            answer.kind == RouteKind::Escalated,
            should_escalate,
            "pair ({s},{t}): width {} vs threshold {threshold}",
            bounds.width()
        );
        if should_escalate {
            escalated += 1;
        }
        // Exact accuracy escalates regardless of width.
        let exact_answer = router.route(s, t, Accuracy::Exact).unwrap();
        assert_eq!(exact_answer.kind, RouteKind::Escalated);
    }
    assert!(escalated > 0 && escalated < cross_pairs.len() as u64);
    let stats = router.stats();
    assert_eq!(stats.escalated, escalated + cross_pairs.len() as u64);
    assert_eq!(stats.cross, cross_pairs.len() as u64 - escalated);
}

/// The routed plane serves through the ordinary front door: mixed batches
/// split correctly, self-pairs stay trivial, and repeats hit the facade
/// cache while still reporting the router.
#[test]
fn routed_facade_serves_mixed_batches_and_caches() {
    let g = test_graph();
    let sharded = ShardedService::build(&g, ShardConfig::with_shards(2), approx_at(2)).unwrap();
    let router = sharded.router();
    let n = g.num_nodes();
    let (mut intra_pair, mut cross_pair) = (None, None);
    for s in 0..n {
        for t in (s + 1)..n {
            if router.shard_of(s) == router.shard_of(t) {
                intra_pair.get_or_insert((s, t));
            } else {
                cross_pair.get_or_insert((s, t));
            }
        }
    }
    let (intra_pair, cross_pair) = (intra_pair.unwrap(), cross_pair.unwrap());
    let batch = vec![intra_pair, cross_pair, (3, 3)];
    let response = sharded
        .submit(&Request::new(Query::batch(batch.clone())))
        .unwrap();
    assert_eq!(response.backend, "SHARD");
    assert_eq!(response.values.len(), 3);
    assert!(response.values[0] > 0.0 && response.values[1] > 0.0);
    assert_eq!(response.values[2], 0.0, "self-pair is trivial");
    assert_eq!(response.trivial_queries, 1);

    let repeat = sharded.submit(&Request::new(Query::batch(batch))).unwrap();
    assert_eq!(repeat.backend, "SHARD");
    assert_eq!(repeat.values, response.values);
    assert_eq!(repeat.cache_hits, 2, "both non-trivial pairs cached");
}
