//! Determinism guarantees of the parallel sampling layer, end to end.
//!
//! The contract: for a fixed seed, every estimator and every bulk walk
//! operation produces **bit-identical** output at any thread count. These
//! tests pin that contract at 1, 2 and 8 threads across the stack, and add a
//! statistical sanity check that the parallel AMC still lands within ε of the
//! exact answer (parallelism must change wall-clock only, never accuracy).

use effective_resistance::graph::Graph;
use effective_resistance::walks::WalkEngine;
use effective_resistance::{Amc, ApproxConfig, Exact, Geer, GraphContext, ResistanceEstimator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph() -> Graph {
    effective_resistance::graph::generators::social_network_like(600, 12.0, 0xd17).unwrap()
}

const PAIRS: [(usize, usize); 4] = [(0, 300), (5, 599), (42, 43), (17, 450)];

fn estimates_at<E, F>(threads: usize, build: F) -> Vec<u64>
where
    E: ResistanceEstimator,
    F: Fn(ApproxConfig) -> E,
{
    let config = ApproxConfig::with_epsilon(0.2)
        .reseeded(0xfeed)
        .with_threads(threads);
    let mut estimator = build(config);
    PAIRS
        .iter()
        .map(|&(s, t)| estimator.estimate(s, t).unwrap().value.to_bits())
        .collect()
}

#[test]
fn amc_estimates_are_bit_identical_across_thread_counts() {
    let g = graph();
    // A pessimistic lambda forces real walk lengths, so the parallel fan-out
    // actually runs (with the true lambda the refined length can be 0).
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let base = estimates_at(1, |cfg| Amc::new(&ctx, cfg));
    for threads in [2, 8] {
        let other = estimates_at(threads, |cfg| Amc::new(&ctx, cfg));
        assert_eq!(base, other, "AMC differs at {threads} threads");
    }
}

#[test]
fn geer_estimates_are_bit_identical_across_thread_counts() {
    let g = graph();
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let base = estimates_at(1, |cfg| Geer::new(&ctx, cfg));
    for threads in [2, 8] {
        let other = estimates_at(threads, |cfg| Geer::new(&ctx, cfg));
        assert_eq!(base, other, "GEER differs at {threads} threads");
    }
}

#[test]
fn walk_engine_histograms_are_bit_identical_across_thread_counts() {
    let g = graph();
    let run = |threads: usize| {
        let mut engine = WalkEngine::new(&g).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(0xbeef);
        let hist = engine.endpoint_histogram(3, 16, 20_000, &mut rng);
        let visits = engine.visit_counts(7, 10, 10_000, &mut rng);
        (hist, visits, engine.total_steps(), engine.total_walks())
    };
    let base = run(1);
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(base.0, other.0, "histogram differs at {threads} threads");
        assert_eq!(base.1, other.1, "visit counts differ at {threads} threads");
        assert_eq!(
            base.2, other.2,
            "step accounting differs at {threads} threads"
        );
        assert_eq!(base.3, other.3);
    }
}

#[test]
fn parallel_amc_stays_within_epsilon_of_exact() {
    let g = graph();
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let mut exact = Exact::new(&ctx).unwrap();
    let eps = 0.25;
    let config = ApproxConfig::with_epsilon(eps).reseeded(3).with_threads(8);
    let mut amc = Amc::new(&ctx, config);
    for &(s, t) in &PAIRS {
        let approx = amc.estimate(s, t).unwrap();
        let truth = exact.estimate(s, t).unwrap().value;
        assert!(
            approx.cost.random_walks > 0,
            "({s},{t}): no walks were sampled"
        );
        assert!(
            (approx.value - truth).abs() <= eps,
            "({s},{t}): parallel AMC {} vs exact {truth}",
            approx.value
        );
    }
}
