//! Determinism guarantees of the parallel sampling layer, end to end.
//!
//! The contract: for a fixed seed, every estimator and every bulk walk
//! operation produces **bit-identical** output at any thread count. These
//! tests pin that contract at 1, 2 and 8 threads across the stack, and add a
//! statistical sanity check that the parallel AMC still lands within ε of the
//! exact answer (parallelism must change wall-clock only, never accuracy).

use effective_resistance::graph::Graph;
use effective_resistance::walks::WalkEngine;
use effective_resistance::{
    Amc, ApproxConfig, Exact, Geer, GraphContext, Mc, Mc2, ResistanceEstimator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph() -> Graph {
    effective_resistance::graph::generators::social_network_like(600, 12.0, 0xd17).unwrap()
}

const PAIRS: [(usize, usize); 4] = [(0, 300), (5, 599), (42, 43), (17, 450)];

fn estimates_at<E, F>(threads: usize, build: F) -> Vec<u64>
where
    E: ResistanceEstimator,
    F: Fn(ApproxConfig) -> E,
{
    let config = ApproxConfig::with_epsilon(0.2)
        .reseeded(0xfeed)
        .with_threads(threads);
    let mut estimator = build(config);
    PAIRS
        .iter()
        .map(|&(s, t)| estimator.estimate(s, t).unwrap().value.to_bits())
        .collect()
}

#[test]
fn amc_estimates_are_bit_identical_across_thread_counts() {
    let g = graph();
    // A pessimistic lambda forces real walk lengths, so the parallel fan-out
    // actually runs (with the true lambda the refined length can be 0).
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let base = estimates_at(1, |cfg| Amc::new(&ctx, cfg));
    for threads in [2, 8] {
        let other = estimates_at(threads, |cfg| Amc::new(&ctx, cfg));
        assert_eq!(base, other, "AMC differs at {threads} threads");
    }
}

#[test]
fn geer_estimates_are_bit_identical_across_thread_counts() {
    let g = graph();
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let base = estimates_at(1, |cfg| Geer::new(&ctx, cfg));
    for threads in [2, 8] {
        let other = estimates_at(threads, |cfg| Geer::new(&ctx, cfg));
        assert_eq!(base, other, "GEER differs at {threads} threads");
    }
}

#[test]
fn walk_engine_histograms_are_bit_identical_across_thread_counts() {
    let g = graph();
    let run = |threads: usize| {
        let mut engine = WalkEngine::new(&g).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(0xbeef);
        let hist = engine.endpoint_histogram(3, 16, 20_000, &mut rng);
        let visits = engine.visit_counts(7, 10, 10_000, &mut rng);
        (hist, visits, engine.total_steps(), engine.total_walks())
    };
    let base = run(1);
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(base.0, other.0, "histogram differs at {threads} threads");
        assert_eq!(base.1, other.1, "visit counts differ at {threads} threads");
        assert_eq!(
            base.2, other.2,
            "step accounting differs at {threads} threads"
        );
        assert_eq!(base.3, other.3);
    }
}

#[test]
fn mc_estimates_are_bit_identical_across_thread_counts() {
    let g = graph();
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let base = estimates_at(1, |cfg| Mc::new(&ctx, cfg).with_walk_budget(4_000));
    for threads in [2, 8] {
        let other = estimates_at(threads, |cfg| Mc::new(&ctx, cfg).with_walk_budget(4_000));
        assert_eq!(base, other, "MC differs at {threads} threads");
    }
}

#[test]
fn mc2_estimates_are_bit_identical_across_thread_counts() {
    let g = graph();
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let edges: Vec<(usize, usize)> = g.edges().take(3).collect();
    let run = |threads: usize| {
        let config = ApproxConfig::with_epsilon(0.2)
            .reseeded(0xfeed)
            .with_threads(threads);
        let mut mc2 = Mc2::new(&ctx, config).with_walk_budget(3_000);
        edges
            .iter()
            .map(|&(s, t)| mc2.estimate(s, t).unwrap().value.to_bits())
            .collect::<Vec<_>>()
    };
    let base = run(1);
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "MC2 differs at {threads} threads");
    }
}

/// Golden values captured on the pre-port implementations (per-walk
/// `Graph::random_neighbor` stepping for MC/MC2, sequential walk pairs for
/// AMC). The lane port preserved every draw schedule, so these exact bits
/// must keep coming out of the variable-length / paired lockstep drivers —
/// including the step accounting. If a future PR deliberately changes a draw
/// schedule, re-pin these and say so in CHANGES.md.
#[test]
fn mc_mc2_amc_golden_values_survived_the_lane_port() {
    let g = graph();
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let cfg = ApproxConfig::with_epsilon(0.2)
        .reseeded(0xfeed)
        .with_threads(1);

    let mut mc = Mc::new(&ctx, cfg).with_walk_budget(4_000);
    let goldens: [(usize, usize, u64, u64); 3] = [
        (0, 300, 0x3fc19a0cf47407e3, 259_347),
        (5, 599, 0x3fcc3ff526eda33a, 294_386),
        (42, 43, 0x3fbdfb20caabddac, 708_330),
    ];
    for (s, t, bits, steps) in goldens {
        let est = mc.estimate(s, t).unwrap();
        assert_eq!(est.value.to_bits(), bits, "MC ({s},{t})");
        assert_eq!(est.cost.walk_steps, steps, "MC ({s},{t}) steps");
    }

    let mut edges = g.edges();
    let e1 = edges.next().unwrap();
    let e2 = edges.nth(50).unwrap();
    assert_eq!((e1, e2), ((0, 1), (0, 176)), "graph generator drifted");
    let mut mc2 = Mc2::new(&ctx, cfg).with_walk_budget(3_000);
    let goldens: [(usize, usize, u64, u64); 2] = [
        (0, 1, 0x3fa3a06d3a06d3a0, 524_820),
        (0, 176, 0x3fc015d867c3ece3, 2_498_428),
    ];
    for (s, t, bits, steps) in goldens {
        let est = mc2.estimate(s, t).unwrap();
        assert_eq!(est.value.to_bits(), bits, "MC2 ({s},{t})");
        assert_eq!(est.cost.walk_steps, steps, "MC2 ({s},{t}) steps");
    }

    let mut amc = Amc::new(&ctx, cfg);
    let goldens: [(usize, usize, u64, u64); 2] = [
        (0, 300, 0x3fc107d67f5f74e0, 58_926),
        (17, 450, 0x3fc5c9cfc93328c1, 132_496),
    ];
    for (s, t, bits, steps) in goldens {
        let est = amc.estimate(s, t).unwrap();
        assert_eq!(est.value.to_bits(), bits, "AMC ({s},{t})");
        assert_eq!(est.cost.walk_steps, steps, "AMC ({s},{t}) steps");
    }
}

#[test]
fn parallel_amc_stays_within_epsilon_of_exact() {
    let g = graph();
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let mut exact = Exact::new(&ctx).unwrap();
    let eps = 0.25;
    let config = ApproxConfig::with_epsilon(eps).reseeded(3).with_threads(8);
    let mut amc = Amc::new(&ctx, config);
    for &(s, t) in &PAIRS {
        let approx = amc.estimate(s, t).unwrap();
        let truth = exact.estimate(s, t).unwrap().value;
        assert!(
            approx.cost.random_walks > 0,
            "({s},{t}): no walks were sampled"
        );
        assert!(
            (approx.value - truth).abs() <= eps,
            "({s},{t}): parallel AMC {} vs exact {truth}",
            approx.value
        );
    }
}
