//! Incremental dynamic serving: Sherman–Morrison carried state, drift and
//! refresh contracts, CG fallback on near-disconnection, and epoch-swap
//! concurrency semantics.

use std::sync::Arc;

use effective_resistance::graph::{generators, transform, GraphBuilder};
use effective_resistance::linalg::LaplacianSolver;
use effective_resistance::{ApproxConfig, DynamicResistanceService, Query, Request};

fn config() -> ApproxConfig {
    ApproxConfig::with_epsilon(0.05)
}

/// Exact centred `L⁺ e_source` on `graph` via CG.
fn exact_column(solver: &LaplacianSolver, n: usize, source: usize) -> Vec<f64> {
    let mut b = vec![0.0; n];
    b[source] = 1.0;
    let (column, outcome) = solver.solve(&b);
    assert!(outcome.converged, "ground-truth solve must converge");
    column
}

/// Sherman–Morrison column updates track `resistance_exact` across an
/// interleaved insert/delete stream, within a tolerance far below ε, for
/// more than one refresh interval's worth of mutations.
#[test]
fn carried_state_tracks_exact_resistance_across_interleaved_stream() {
    let n = 80;
    let g = generators::social_network_like(n, 6.0, 9).unwrap();
    let dynamic = DynamicResistanceService::from_graph(&g, config()).with_refresh_interval(64);

    // Seed exact resident state: diag(L⁺) plus four resident columns.
    let solver = LaplacianSolver::for_ground_truth(&g);
    let sources = [3usize, 17, 45, 60];
    let columns: Vec<(usize, Vec<f64>)> = sources
        .iter()
        .map(|&s| (s, exact_column(&solver, n, s)))
        .collect();
    let diagonal: Vec<f64> = (0..n).map(|v| exact_column(&solver, n, v)[v]).collect();
    dynamic.seed_index_state(diagonal, columns).unwrap();

    // Interleaved stream: inserts of fresh shortcut edges and deletes of
    // edges inserted earlier in the same stream (guaranteed non-bridges:
    // the original connected graph provides the alternate path).
    let fresh: Vec<(usize, usize)> = (0..n)
        .map(|i| (i, (i * 37 + 11) % n))
        .filter(|&(u, v)| u != v && !dynamic.has_edge(u, v))
        .take(6)
        .collect();
    assert_eq!(fresh.len(), 6, "need six non-edges to insert");
    let order = [
        (0, true),
        (1, true),
        (0, false),
        (2, true),
        (1, false),
        (3, true),
        (2, false),
        (4, true),
        (3, false),
        (4, false),
        (5, true),
        (5, false),
    ];
    let stream: Vec<(usize, usize, bool)> = order
        .iter()
        .map(|&(i, insert)| (fresh[i].0, fresh[i].1, insert))
        .collect();
    assert!(stream.len() >= 10, "the stream must span >= K updates");
    for &(u, v, insert) in &stream {
        let changed = if insert {
            dynamic.insert_edge(u, v).unwrap()
        } else {
            dynamic.remove_edge(u, v).unwrap()
        };
        assert!(changed, "every stream step mutates the graph");

        // Reconstruct r(s, t) from the carried state and compare with a
        // fresh CG solve on the mutated graph.
        let diag = dynamic.carried_diagonal().expect("state stays resident");
        for &s in &sources {
            let col = dynamic.carried_column(s).expect("column stays resident");
            let t = (s + 29) % n;
            let r_carried = diag[s] + diag[t] - 2.0 * col[t];
            let r_exact = dynamic.resistance_exact(s, t).unwrap();
            assert!(
                (r_carried - r_exact).abs() < 1e-5,
                "drift after stream step ({u}, {v}, {insert}): \
                 carried {r_carried} vs exact {r_exact}"
            );
        }
    }
    assert_eq!(dynamic.sm_updates(), stream.len() as u64);
    assert_eq!(dynamic.cg_fallbacks(), 0);
}

/// After the K-th mutation the refresh is a full cold rebuild: answers are
/// bit-identical to a service built from scratch on the mutated graph.
#[test]
fn full_refresh_is_bit_identical_to_cold_rebuild() {
    let g = generators::social_network_like(150, 8.0, 4).unwrap();
    let dynamic = DynamicResistanceService::from_graph(&g, config()).with_refresh_interval(4);
    dynamic.resistance(0, 75).unwrap();
    assert_eq!(dynamic.snapshot_full_rebuilds(), 1, "initial build is full");

    let inserts = [(0usize, 75usize), (10, 90), (20, 100)];
    let removed = g.edges().nth(7).unwrap();
    for &(u, v) in &inserts {
        assert!(dynamic.insert_edge(u, v).unwrap());
    }
    assert!(dynamic.remove_edge(removed.0, removed.1).unwrap());

    // Fourth mutation reaches the refresh interval: the next snapshot is a
    // full rebuild, dropping all carried and warm state.
    dynamic.refresh().unwrap();
    assert_eq!(dynamic.snapshot_full_rebuilds(), 2);

    let mutated = transform::add_edges(&g, &inserts).unwrap();
    let mutated = transform::remove_edges(&mutated, &[removed]).unwrap();
    let cold = DynamicResistanceService::from_graph(&mutated, config());
    for &(s, t) in &[(0usize, 75usize), (5, 120), (33, 140), (20, 100)] {
        let warm_bits = dynamic.resistance(s, t).unwrap().to_bits();
        let cold_bits = cold.resistance(s, t).unwrap().to_bits();
        assert_eq!(warm_bits, cold_bits, "({s}, {t}) must match a cold build");
    }
}

/// Deleting a bridge (or near-bridge) refuses the Sherman–Morrison path:
/// the carried state is dropped and the fallback counter ticks; safe
/// deletions keep advancing the state.
#[test]
fn near_disconnection_delete_takes_cg_fallback() {
    // Two 10-cliques joined by a single bridge {0, 10}.
    let mut edges = Vec::new();
    for base in [0usize, 10] {
        for i in base..base + 10 {
            for j in (i + 1)..base + 10 {
                edges.push((i, j));
            }
        }
    }
    edges.push((0, 10));
    let g = GraphBuilder::from_edges(20, edges).build().unwrap();
    let dynamic = DynamicResistanceService::from_graph(&g, config());

    let solver = LaplacianSolver::for_ground_truth(&g);
    let diagonal: Vec<f64> = (0..20).map(|v| exact_column(&solver, 20, v)[v]).collect();
    dynamic.seed_index_state(diagonal, Vec::new()).unwrap();

    // A clique-internal edge is far from a bridge: SM applies.
    assert!(dynamic.remove_edge(2, 7).unwrap());
    assert_eq!(dynamic.sm_updates(), 1);
    assert_eq!(dynamic.cg_fallbacks(), 0);
    assert!(dynamic.carried_diagonal().is_some());

    // The bridge delete would disconnect: denominator 1 − r(0, 10) ≈ 0, so
    // the rank-1 path is refused, the carried state dropped.
    assert!(dynamic.remove_edge(0, 10).unwrap());
    assert_eq!(dynamic.cg_fallbacks(), 1);
    assert!(
        dynamic.carried_diagonal().is_none(),
        "carried state must be dropped on fallback"
    );

    // The graph is now genuinely disconnected; queries surface the error
    // and recover once the bridge is restored.
    assert!(dynamic.resistance(0, 10).is_err());
    assert!(dynamic.insert_edge(0, 10).unwrap());
    assert!(dynamic.resistance(0, 10).is_ok());
}

/// Readers pinned on an old epoch keep answering bit-identically at the old
/// version while a mutation burst lands; new admissions see the new version.
fn epoch_swap_with_pinned_readers(threads: usize) {
    let g = generators::social_network_like(120, 7.0, 3).unwrap();
    let dynamic = DynamicResistanceService::from_graph(&g, config());
    dynamic.resistance(1, 60).unwrap();
    let pinned = dynamic.epoch().expect("first query installed an epoch");
    let v0 = pinned.version();
    let request = Request::new(Query::pair(1, 60)).with_accuracy(config().into());
    let baseline = pinned.service().submit(&request).unwrap().value();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let pinned = Arc::clone(&pinned);
            let request = &request;
            scope.spawn(move || {
                for _ in 0..25 {
                    let value = pinned.service().submit(request).unwrap().value();
                    assert_eq!(
                        value.to_bits(),
                        baseline.to_bits(),
                        "pinned epoch must keep serving old-version bits"
                    );
                }
            });
        }
        // Concurrent mutation burst with interleaved fresh admissions: every
        // submit completes (stale epoch serves if the updater is busy).
        for i in 0..8usize {
            dynamic.insert_edge(i, 60 + i).unwrap_or(false);
            dynamic.submit(&request).unwrap();
        }
    });

    assert_eq!(pinned.version(), v0, "pinned epoch never changes version");
    dynamic.resistance(1, 60).unwrap();
    let fresh = dynamic.epoch().unwrap();
    assert!(
        fresh.version() > v0,
        "new admissions must see the post-burst version"
    );
}

#[test]
fn epoch_swap_single_reader() {
    epoch_swap_with_pinned_readers(1);
}

#[test]
fn epoch_swap_two_readers() {
    epoch_swap_with_pinned_readers(2);
}

#[test]
fn epoch_swap_eight_readers() {
    epoch_swap_with_pinned_readers(8);
}
