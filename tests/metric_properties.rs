//! Integration tests of the mathematical properties of effective resistance,
//! exercised through the public estimators (not the internal solvers), so a
//! regression anywhere in the stack shows up as a broken invariant.

use effective_resistance::graph::{generators, Graph};
use effective_resistance::{
    ApproxConfig, Exact, Geer, GraphContext, GroundTruth, GroundTruthMethod, ResistanceEstimator,
};

fn exact_resistance(graph: &Graph, s: usize, t: usize) -> f64 {
    GroundTruth::with_method(graph, GroundTruthMethod::LaplacianSolve)
        .resistance(s, t)
        .unwrap()
}

#[test]
fn closed_forms_on_structured_graphs() {
    // Complete graph K_n: r = 2/n for every pair.
    let k = generators::complete(20).unwrap();
    let ctx = GraphContext::preprocess(&k).unwrap();
    let mut exact = Exact::new(&ctx).unwrap();
    for &(s, t) in &[(0usize, 1usize), (3, 17), (10, 19)] {
        assert!((exact.estimate(s, t).unwrap().value - 0.1).abs() < 1e-9);
    }
    // Lollipop: along the tail, resistances add like series resistors.
    let lol = generators::lollipop(6, 8).unwrap();
    assert!((exact_resistance(&lol, 6, 10) - 4.0).abs() < 1e-7);
    // Cycle C_n: r(0, k) = k (n - k) / n.
    let n = 11;
    let cycle = generators::cycle(n).unwrap();
    for k in 1..n {
        let expected = (k * (n - k)) as f64 / n as f64;
        assert!((exact_resistance(&cycle, 0, k) - expected).abs() < 1e-7);
    }
}

#[test]
fn symmetry_of_the_estimators() {
    let graph = generators::social_network_like(800, 12.0, 0x5a).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let eps = 0.1;
    let mut geer = Geer::new(&ctx, ApproxConfig::with_epsilon(eps).reseeded(1));
    for &(s, t) in &[(0usize, 400usize), (13, 700), (250, 251)] {
        let forward = geer.estimate(s, t).unwrap().value;
        let backward = geer.estimate(t, s).unwrap().value;
        // Randomized estimates of the same symmetric quantity: both are within
        // eps of the truth, hence within 2*eps of each other.
        assert!(
            (forward - backward).abs() <= 2.0 * eps,
            "r({s},{t})={forward} vs r({t},{s})={backward}"
        );
    }
}

#[test]
fn triangle_inequality_holds_for_exact_values() {
    let graph = generators::social_network_like(500, 10.0, 0x7a).unwrap();
    let triples = [(0usize, 100usize, 200usize), (5, 50, 450), (321, 322, 323)];
    for (a, b, c) in triples {
        let rab = exact_resistance(&graph, a, b);
        let rbc = exact_resistance(&graph, b, c);
        let rac = exact_resistance(&graph, a, c);
        assert!(rac <= rab + rbc + 1e-9, "triangle inequality violated");
        assert!(rab > 0.0 && rbc > 0.0 && rac > 0.0);
    }
}

#[test]
fn foster_theorem_edge_resistances_sum_to_n_minus_one() {
    // Foster's theorem: sum over edges of r(e) equals n - 1. A strong global
    // consistency check that exercises the solver on every edge.
    let graph = generators::social_network_like(300, 8.0, 0xf0).unwrap();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let total: f64 = graph
        .edges()
        .map(|(u, v)| truth.resistance(u, v).unwrap())
        .sum();
    let expected = (graph.num_nodes() - 1) as f64;
    assert!(
        (total - expected).abs() < 1e-4 * expected,
        "Foster sum {total} vs n-1 = {expected}"
    );
}

#[test]
fn rayleigh_monotonicity_adding_edges_cannot_increase_resistance() {
    // Rayleigh's monotonicity law: adding an edge can only decrease (or keep)
    // every pairwise effective resistance.
    let sparse = generators::social_network_like(400, 6.0, 0x9a).unwrap();
    let mut builder =
        effective_resistance::graph::GraphBuilder::from_edges(sparse.num_nodes(), sparse.edges());
    // add a bundle of extra random-ish edges
    for i in 0..200 {
        builder = builder.add_edge((i * 7) % 400, (i * 13 + 5) % 400);
    }
    let dense = builder.build().unwrap();
    for &(s, t) in &[(0usize, 200usize), (11, 399), (123, 321)] {
        let before = exact_resistance(&sparse, s, t);
        let after = exact_resistance(&dense, s, t);
        assert!(
            after <= before + 1e-9,
            "adding edges increased r({s},{t}): {before} -> {after}"
        );
    }
}

#[test]
fn resistance_bounds_from_degrees() {
    // For any pair, r(s, t) >= 1/d(s) + 1/d(t) - ... is not a general law, but
    // two universal bounds are: for (s, t) in E, 1/(2m) <= r <= 1, and for any
    // s != t, r(s, t) >= max(1/d(s), 1/d(t)) / 2 is implied by the parallel
    // cut argument r(s,t) >= 1/d(s) + 1/d(t) - 1 when both ends... keep to the
    // provable ones: r(s,t) <= n - 1 (series bound on a connected graph) and
    // r(s,t) >= 1/min(d(s), d(t)) only when the smaller-degree endpoint's
    // edges form a cut of size d, giving r >= 1/d. Check r >= 1/d for leaves.
    let lol = generators::lollipop(5, 4).unwrap();
    let tail_end = lol.num_nodes() - 1; // degree-1 node
    let r = exact_resistance(&lol, tail_end, 0);
    assert!(
        r >= 1.0 - 1e-9,
        "a degree-1 node sees at least its own edge"
    );
    assert!(r <= (lol.num_nodes() - 1) as f64);

    let graph = generators::social_network_like(300, 10.0, 0xbd).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let mut exact = Exact::new(&ctx).unwrap();
    for (u, v) in graph.edges().take(50) {
        let r = exact.estimate(u, v).unwrap().value;
        assert!(r >= 1.0 / (2.0 * graph.num_edges() as f64) - 1e-12);
        assert!(r <= 1.0 + 1e-9);
    }
}
