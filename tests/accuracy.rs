//! Cross-crate integration tests: every estimator meets the paper's accuracy
//! contract on realistic graphs, measured against two independent ground
//! truths.

use effective_resistance::graph::{generators, EdgeQuerySet, NodePairQuerySet};
use effective_resistance::{
    Amc, ApproxConfig, Exact, Geer, GraphContext, GroundTruth, GroundTruthMethod, Hay, Mc2,
    ResistanceEstimator, Rp, Smm,
};

/// A mid-size social-network-like graph shared by the accuracy tests.
fn test_graph() -> effective_resistance::graph::Graph {
    generators::social_network_like(1_200, 14.0, 0xacc).unwrap()
}

#[test]
fn ground_truth_oracles_agree() {
    let graph = test_graph();
    let smm_truth = GroundTruth::with_method(&graph, GroundTruthMethod::SmmIterations(600));
    let cg_truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let queries = NodePairQuerySet::uniform(&graph, 10, 3);
    for pair in queries.pairs() {
        let a = smm_truth.resistance(pair.s, pair.t).unwrap();
        let b = cg_truth.resistance(pair.s, pair.t).unwrap();
        assert!((a - b).abs() < 1e-6, "({}, {}): {a} vs {b}", pair.s, pair.t);
    }
}

#[test]
fn geer_amc_smm_meet_epsilon_on_random_pairs() {
    let graph = test_graph();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let queries = NodePairQuerySet::uniform(&graph, 12, 7);
    for &epsilon in &[0.5, 0.1] {
        let config = ApproxConfig::with_epsilon(epsilon).reseeded(11);
        let mut geer = Geer::new(&ctx, config);
        let mut amc = Amc::new(&ctx, config);
        let mut smm = Smm::new(&ctx, config);
        for pair in queries.pairs() {
            let exact = truth.resistance(pair.s, pair.t).unwrap();
            for (name, value) in [
                ("GEER", geer.estimate(pair.s, pair.t).unwrap().value),
                ("AMC", amc.estimate(pair.s, pair.t).unwrap().value),
                ("SMM", smm.estimate(pair.s, pair.t).unwrap().value),
            ] {
                assert!(
                    (value - exact).abs() <= epsilon,
                    "{name} eps={epsilon} ({}, {}): {value} vs {exact}",
                    pair.s,
                    pair.t
                );
            }
        }
    }
}

#[test]
fn edge_query_methods_meet_epsilon_on_edges() {
    let graph = test_graph();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let queries = EdgeQuerySet::uniform(&graph, 8, 5);
    let epsilon = 0.1;
    let config = ApproxConfig::with_epsilon(epsilon).reseeded(23);
    let mut geer = Geer::new(&ctx, config);
    let mut hay = Hay::new(&ctx, config);
    let mut mc2 = Mc2::new(&ctx, config).with_gamma_lower(0.01);
    for pair in queries.pairs() {
        let exact = truth.resistance(pair.s, pair.t).unwrap();
        assert!(exact <= 1.0 + 1e-9, "edge resistance is at most 1");
        for (name, value) in [
            ("GEER", geer.estimate(pair.s, pair.t).unwrap().value),
            ("HAY", hay.estimate(pair.s, pair.t).unwrap().value),
            ("MC2", mc2.estimate(pair.s, pair.t).unwrap().value),
        ] {
            assert!(
                (value - exact).abs() <= epsilon,
                "{name} ({}, {}): {value} vs {exact}",
                pair.s,
                pair.t
            );
        }
    }
}

#[test]
fn exact_and_rp_agree_with_cg_solver() {
    let graph = generators::social_network_like(400, 10.0, 0xe4).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let truth = GroundTruth::with_method(&graph, GroundTruthMethod::LaplacianSolve);
    let mut exact = Exact::new(&ctx).unwrap();
    let mut rp = Rp::new(&ctx, ApproxConfig::with_epsilon(0.4)).unwrap();
    let queries = NodePairQuerySet::uniform(&graph, 6, 9);
    for pair in queries.pairs() {
        let reference = truth.resistance(pair.s, pair.t).unwrap();
        let via_pinv = exact.estimate(pair.s, pair.t).unwrap().value;
        assert!((via_pinv - reference).abs() < 1e-6);
        let via_rp = rp.estimate(pair.s, pair.t).unwrap().value;
        let rel = (via_rp - reference).abs() / reference.max(1e-12);
        assert!(
            rel < 0.6,
            "RP is a multiplicative approximation: {via_rp} vs {reference}"
        );
    }
}

#[test]
fn estimates_are_deterministic_given_seed() {
    let graph = generators::social_network_like(600, 12.0, 0xde).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let config = ApproxConfig::with_epsilon(0.2).reseeded(77);
    let a = Geer::new(&ctx, config).estimate(1, 300).unwrap().value;
    let b = Geer::new(&ctx, config).estimate(1, 300).unwrap().value;
    assert_eq!(a, b, "same seed, same answer");
    // To check that the seed really drives the Monte Carlo part, force a
    // pessimistic lambda so the refined walk length (and hence AMC's role
    // inside GEER) is substantial.
    let slow_ctx = GraphContext::with_lambda(&graph, 0.95).unwrap();
    let c1 = Geer::new(&slow_ctx, config.reseeded(101))
        .estimate(1, 300)
        .unwrap();
    let c2 = Geer::new(&slow_ctx, config.reseeded(202))
        .estimate(1, 300)
        .unwrap();
    assert!(c1.cost.random_walks > 0, "forced context must use walks");
    assert_ne!(
        c1.value, c2.value,
        "different seed should perturb the Monte Carlo part"
    );
}

#[test]
fn self_queries_are_exactly_zero_for_every_method() {
    let graph = generators::social_network_like(500, 10.0, 0x5e).unwrap();
    let ctx = GraphContext::preprocess(&graph).unwrap();
    let config = ApproxConfig::with_epsilon(0.3);
    let mut estimators: Vec<Box<dyn ResistanceEstimator>> = vec![
        Box::new(Geer::new(&ctx, config)),
        Box::new(Amc::new(&ctx, config)),
        Box::new(Smm::new(&ctx, config)),
        Box::new(Exact::with_solver(&ctx)),
    ];
    for est in estimators.iter_mut() {
        assert_eq!(est.estimate(42, 42).unwrap().value, 0.0, "{}", est.name());
    }
}
