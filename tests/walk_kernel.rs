//! End-to-end guarantees of the zero-allocation walk kernel.
//!
//! The kernel replaced the per-walk `StdRng` + dense-tally bulk path, so
//! these tests pin the properties the refactor must preserve: bit-identical
//! results at any thread count through the new path, scratch reuse that never
//! leaks counts between bulk calls (including across an epoch wraparound),
//! and statistical accuracy of the kernel-driven estimators.

use effective_resistance::graph::generators;
use effective_resistance::walks::kernel::{par_tally, ScratchPool, WalkKernel, WalkScratch};
use effective_resistance::walks::WalkEngine;
use effective_resistance::{Amc, ApproxConfig, Exact, GraphContext, ResistanceEstimator, Tpc};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn kernel_bulk_operations_are_bit_identical_at_1_2_8_threads() {
    let g = generators::barabasi_albert(2_000, 6, 0xce).unwrap();
    let run = |threads: usize| {
        let mut engine = WalkEngine::new(&g).with_threads(threads);
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let hist = engine.endpoint_histogram(3, 14, 9_000, &mut rng);
        let visits = engine.visit_counts(7, 10, 6_000, &mut rng);
        let samples = engine.endpoint_samples(11, 6, 4_000, &mut rng);
        (hist, visits, samples, engine.total_steps())
    };
    let base = run(1);
    for threads in [2, 8] {
        assert_eq!(
            base,
            run(threads),
            "kernel path differs at {threads} threads"
        );
    }
}

#[test]
fn tpc_through_the_kernel_is_bit_identical_across_thread_counts() {
    let g = generators::social_network_like(500, 10.0, 0x7c).unwrap();
    let ctx = GraphContext::preprocess(&g).unwrap();
    let run = |threads: usize| {
        let config = ApproxConfig::with_epsilon(0.3)
            .reseeded(0xabc)
            .with_threads(threads);
        let mut tpc = Tpc::new(&ctx, config).with_sample_scale(1e-3);
        tpc.estimate(0, 250).unwrap().value.to_bits()
    };
    let base = run(1);
    for threads in [2, 8] {
        assert_eq!(base, run(threads), "TPC differs at {threads} threads");
    }
}

#[test]
fn scratch_reuse_across_bulk_calls_never_leaks_counts() {
    // Drive one shared pool through many differently-seeded bulk calls and
    // replay each against a fresh pool: reuse must be invisible.
    let g = generators::social_network_like(300, 8.0, 0x11).unwrap();
    let kernel = WalkKernel::new(&g);
    let shared_pool = ScratchPool::new(g.num_nodes());
    let tally = |pool: &ScratchPool, seed: u64, threads: usize| {
        par_tally(4_000, threads, pool, |range, scratch| {
            kernel.batch_endpoints(2, 9, seed, range, &mut |_, end, steps| {
                scratch.bump(end);
                scratch.add_steps(steps);
            });
        })
    };
    for (round, &seed) in [3u64, 99, 3, 1234, 99].iter().enumerate() {
        let threads = 1 + round % 3;
        let reused = tally(&shared_pool, seed, threads);
        let fresh = tally(&ScratchPool::new(g.num_nodes()), seed, threads);
        assert_eq!(reused, fresh, "round {round} (seed {seed}) leaked state");
    }
    assert!(
        shared_pool.idle() >= 1,
        "workers must return scratches to the pool"
    );
}

#[test]
fn scratch_survives_epoch_wraparound_mid_pool() {
    // A scratch parked in a pool right before its 32-bit epoch wraps must
    // tally the next bulk call correctly (the wrap bulk-resets the stamps).
    let g = generators::complete(40).unwrap();
    let kernel = WalkKernel::new(&g);
    let pool = ScratchPool::new(g.num_nodes());
    let mut near_wrap = WalkScratch::new(g.num_nodes());
    near_wrap.begin();
    near_wrap.bump(5);
    near_wrap.force_epoch(u32::MAX); // next begin() wraps to epoch 1
    pool.put(near_wrap);
    let tally = |pool: &ScratchPool| {
        par_tally(2_500, 1, pool, |range, scratch| {
            kernel.batch_endpoints(0, 5, 77, range, &mut |_, end, steps| {
                scratch.bump(end);
                scratch.add_steps(steps);
            });
        })
    };
    let wrapped = tally(&pool);
    let fresh = tally(&ScratchPool::new(g.num_nodes()));
    assert_eq!(wrapped, fresh, "wraparound leaked pre-wrap counts");
    assert_eq!(wrapped.0.iter().sum::<u64>(), 2_500);
}

#[test]
fn kernel_path_amc_stays_epsilon_accurate() {
    let g = generators::social_network_like(250, 12.0, 0xacc).unwrap();
    // A pessimistic lambda forces real walk lengths so AMC actually samples
    // through the kernel instead of returning the deterministic prefix.
    let ctx = GraphContext::with_lambda(&g, 0.9).unwrap();
    let mut exact = Exact::new(&ctx).unwrap();
    let eps = 0.25;
    let mut amc = Amc::new(&ctx, ApproxConfig::with_epsilon(eps).reseeded(0xa3c));
    for &(s, t) in &[(0usize, 125usize), (10, 240), (33, 34)] {
        let est = amc.estimate(s, t).unwrap();
        let truth = exact.estimate(s, t).unwrap().value;
        assert!(
            (est.value - truth).abs() <= eps,
            "({s},{t}): kernel-path AMC {} vs exact {truth}",
            est.value
        );
    }
}

#[test]
fn lane_batched_escape_and_first_hit_match_closed_forms() {
    // Triangle: escape prob = 1/(d(s)·r) = 1/(2·2/3) = 3/4; the first visit
    // to t arrives over the edge (s, t) with probability r(s, t) = 2/3.
    let triangle = generators::complete(3).unwrap();
    let trials = 60_000;
    let escape =
        effective_resistance::walks::escape_trials(&triangle, 0, 1, 10_000, trials, 0xe5c, 0);
    assert_eq!(escape.trials(), trials);
    let p = escape.reached as f64 / trials as f64;
    assert!((p - 0.75).abs() < 0.01, "triangle escape probability {p}");
    let hit =
        effective_resistance::walks::first_hit_trials(&triangle, 0, 1, 10_000, trials, 0xf1a, 0);
    let p = hit.via_edge as f64 / trials as f64;
    assert!(
        (p - 2.0 / 3.0).abs() < 0.01,
        "triangle first-hit-via-edge {p}"
    );

    // 2-node path: r(0,1) = 1, d(0) = 1 — every escape trial hits t on its
    // first step, exactly.
    let path = generators::path(2).unwrap();
    let escape = effective_resistance::walks::escape_trials(&path, 0, 1, 10, 5_000, 0x9a7, 0);
    assert_eq!(escape.reached, 5_000);
    assert_eq!(escape.steps, 5_000);
}

#[test]
fn lane_refill_edge_cases_are_exact_at_any_thread_count() {
    // More pending walks than lanes (refill churns), fewer than one full
    // block (partial first fill), and a single trial: each must tally
    // exactly the per-stream single-walk outcomes, at 1/2/8 threads.
    let g = generators::social_network_like(300, 8.0, 0x1a9e).unwrap();
    for trials in [1u64, 9, 33, 1_037] {
        let base = effective_resistance::walks::escape_trials(&g, 0, 150, 5_000, trials, 7, 1);
        assert_eq!(base.trials(), trials, "every trial retires exactly once");
        for threads in [2, 8] {
            let other =
                effective_resistance::walks::escape_trials(&g, 0, 150, 5_000, trials, 7, threads);
            assert_eq!(base, other, "{trials} trials at {threads} threads");
        }
    }
}
